// The unified cache core behind every cache structure in the simulator.
//
// Historically `SetAssocCache`, `PartitionedCache`, and `SetPartitionedCache`
// each carried their own stamp-scan LRU, victim loop, and statistics — three
// copies of the hottest code in the simulator, and three places to touch for
// any second replacement policy. The core factors the shared machinery into
// one class along two orthogonal axes:
//
//   * replacement — a pluggable `ReplacementPolicy` (true LRU / tree-PLRU /
//     SRRIP) with compact per-set metadata, selected via
//     `CacheGeometry::repl`;
//   * enforcement — how partitioning constrains victim choice
//     (`PartitionEnforcement`): none, way partitioning by eviction control
//     (paper §V), way partitioning by flush-reconfiguration (the alternative
//     §V argues against), or set partitioning (the coloring wrapper maps
//     blocks to sets itself and victimizes globally within the set).
//
// The legacy classes remain as thin wrappers with their exact historical
// APIs; under true LRU the core reproduces their observable behaviour
// bit-identically (stamps induced a total recency order; the recency
// permutation is that same order stored compactly).
//
// Tag lookup — finding the resident way of a block — is a third, purely
// mechanical axis (`CacheGeometry::index`): a linear scan over the ways, or
// the incremental block->way hash index of block_index.hpp. The choice never
// affects which line hits or which way is victimized, only the cost of
// finding out; results are bit-identical across kinds.
//
// Line metadata is struct-of-arrays with validity folded into the tag array
// (kInvalidTag marks an empty way — see replacement.hpp), so the scan probe
// reads one contiguous run of 64-bit tags per set and dispatches to the
// vectorized compare of simd.hpp; the separate per-line arrays (dirty,
// owner, last accessor) are only touched on the outcome paths that need
// them.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/types.hpp"
#include "src/mem/block_index.hpp"
#include "src/mem/cache_config.hpp"
#include "src/mem/cache_stats.hpp"
#include "src/mem/clos.hpp"
#include "src/mem/replacement.hpp"

namespace capart::mem {

/// How partitioning constrains the victim search.
enum class PartitionEnforcement : std::uint8_t {
  /// Global replacement; targets are recorded but never enforced.
  kNone,
  /// Paper §V: a thread below its way target evicts the policy victim among
  /// *foreign* lines, a thread at/above target among its *own* lines. The
  /// partition drifts toward the targets; no line is ever flushed.
  kWayEvictionControl,
  /// Retargeting immediately invalidates the shrinking threads' policy
  /// victims down to the new per-set target ("considerable loss of data
  /// during the reconfiguration"); replacement otherwise behaves like
  /// eviction control.
  kWayFlushReconfigure,
  /// Set partitioning: isolation comes from the caller's block->set mapping
  /// (page coloring), so victim choice within a set is unconstrained.
  kSetColoring,
  /// CAT-style way masks (Intel RDT / pmctrack `intel_rdt` semantics): each
  /// thread fills and victimizes only within its CLOS's contiguous way
  /// range (set_way_ranges); hits anywhere remain unrestricted, and a mask
  /// change never flushes — lines outside the new mask stay resident until
  /// naturally evicted, exactly the way-bouncing behaviour of the hardware.
  kClosWayMask,
};

std::string_view to_string(PartitionEnforcement enforcement) noexcept;

class CacheCore {
 public:
  struct AccessResult {
    bool hit = false;
    /// Previous toucher of the line differed (hit) — constructive sharing.
    bool inter_thread_hit = false;
    /// A valid line last touched by another thread was evicted.
    bool inter_thread_eviction = false;
  };

  /// Tag-lookup telemetry: how many lookups ran and how many slots (hash) or
  /// ways (scan) each examined. Published as the l2/lookup_* metrics.
  struct LookupStats {
    std::uint64_t lookups = 0;
    /// Total slots/ways examined across all lookups.
    std::uint64_t probed_slots = 0;
    /// Histogram-ish probe-length buckets: 1, 2, 3-4, 5-8, >8.
    std::array<std::uint64_t, 5> probe_len_hist{};

    LookupStats& operator+=(const LookupStats& o) noexcept {
      lookups += o.lookups;
      probed_slots += o.probed_slots;
      for (std::size_t b = 0; b < probe_len_hist.size(); ++b) {
        probe_len_hist[b] += o.probe_len_hist[b];
      }
      return *this;
    }
  };

  /// The replacement policy is taken from `geometry.repl`.
  CacheCore(const CacheGeometry& geometry, ThreadId num_threads,
            PartitionEnforcement enforcement);

  /// One access by `thread` to the set `geometry().set_of_block(block)`.
  AccessResult access(ThreadId thread, Addr addr, AccessType type);

  /// One access with a caller-supplied set index (the coloring wrapper maps
  /// blocks to sets through page ownership instead of the address bits).
  AccessResult access_in_set(ThreadId thread, std::uint64_t block,
                             std::uint32_t set, AccessType type);

  /// Installs new per-thread way targets (one per thread, each >= 1, summing
  /// to the way count). Only meaningful under way enforcement; under
  /// kWayFlushReconfigure shrinking threads immediately lose their policy
  /// victims down to the new per-set target.
  void set_targets(std::span<const std::uint32_t> targets);

  /// Installs per-thread contiguous way masks (one per thread, each at least
  /// one way wide, within the geometry). Only valid under kClosWayMask.
  /// Nothing is flushed: lines outside a thread's new mask remain resident
  /// and hittable until evicted by the threads now filling those ways.
  void set_way_ranges(std::span<const WayMask> per_thread);

  /// Mask of `thread` under kClosWayMask (full cache before the first
  /// set_way_ranges call).
  const WayMask& way_range(ThreadId thread) const {
    CAPART_CHECK(enforcement_ == PartitionEnforcement::kClosWayMask &&
                     thread < ranges_.size(),
                 "way_range: not under clos enforcement");
    return ranges_[thread];
  }

  /// Lines invalidated by the most recent set_targets() (always 0 outside
  /// kWayFlushReconfigure).
  std::uint64_t flushed_on_last_retarget() const noexcept {
    return flushed_on_last_retarget_;
  }

  /// Drops all contents and replacement state (stats are kept).
  void flush();

  /// True when `block` is resident in the address-mapped set.
  bool contains(Addr addr) const noexcept;

  /// True when `block` is resident in `set` (coloring wrapper lookup).
  bool contains_block_in_set(std::uint64_t block,
                             std::uint32_t set) const noexcept;

  /// Lines currently owned by `thread` in set `set` (test/introspection).
  std::uint32_t owned_in_set(std::uint32_t set, ThreadId thread) const;

  /// Lines currently owned by `thread` across all sets.
  std::uint64_t owned_total(ThreadId thread) const;

  std::span<const std::uint32_t> targets() const noexcept { return targets_; }
  const CacheStats& stats() const noexcept { return stats_; }
  const CacheGeometry& geometry() const noexcept { return geometry_; }
  ThreadId num_threads() const noexcept { return num_threads_; }
  PartitionEnforcement enforcement() const noexcept { return enforcement_; }
  ReplacementKind replacement_kind() const noexcept { return repl_->kind(); }
  /// The concrete lookup mechanism in force (kAuto already resolved).
  IndexKind index_kind() const noexcept { return index_kind_; }
  const LookupStats& lookup_stats() const noexcept { return lookup_stats_; }

 private:
  std::size_t line_index(std::uint32_t set, std::uint32_t way) const noexcept {
    return static_cast<std::size_t>(set) * geometry_.ways + way;
  }
  std::uint16_t& owned(std::uint32_t set, ThreadId t) noexcept {
    return owned_[static_cast<std::size_t>(set) * num_threads_ + t];
  }
  std::uint16_t owned(std::uint32_t set, ThreadId t) const noexcept {
    return owned_[static_cast<std::size_t>(set) * num_threads_ + t];
  }

  /// Victim way for a miss by `thread` in `set`: first invalid way, else the
  /// replacement policy's pick within the enforcement-permitted scope.
  std::uint32_t choose_victim(std::uint32_t set, ThreadId thread);

  /// Resident way of `block` in `set` via the configured mechanism, or
  /// BlockWayIndex::kNotFound; `probes` receives the slots/ways examined.
  std::uint32_t find_way(std::uint32_t set, std::uint64_t block,
                         std::uint32_t& probes) const noexcept;

  /// Lookup telemetry bucket for a probe chain of `n` slots/ways.
  static constexpr std::size_t probe_bucket(std::uint32_t n) noexcept {
    return n <= 1 ? 0 : n == 2 ? 1 : n <= 4 ? 2 : n <= 8 ? 3 : 4;
  }

  void note_lookup(std::uint32_t probes) noexcept {
    ++lookup_stats_.lookups;
    lookup_stats_.probed_slots += probes;
    ++lookup_stats_.probe_len_hist[probe_bucket(probes)];
  }

  /// Invalidates the valid line (set, way), keeping the block index, fill
  /// count and ownership counters consistent (retarget flush path).
  void invalidate_line(std::uint32_t set, std::uint32_t way);

  CacheGeometry geometry_;
  ThreadId num_threads_;
  PartitionEnforcement enforcement_;
  /// Single-thread cache outside CLOS enforcement (every private L1 and
  /// private-L2 slice). The sharing checks and the owner/accessor/ownership
  /// bookkeeping are then vacuous — the sole thread owns and last-touched
  /// every valid line — so access_in_set takes a lean path that skips them
  /// and choose_victim collapses every enforcement scope to kAnyValid
  /// (bit-identical: with one thread all scopes admit exactly the valid
  /// lines). owned_in_set/owned_total derive from fill counts instead.
  bool mono_ = false;
  IndexKind index_kind_;
  std::unique_ptr<ReplacementPolicy> repl_;
  /// repl_'s LruList when the policy is true LRU (the default), else null:
  /// the per-access touch then inlines instead of dispatching virtually.
  LruList* lru_fast_ = nullptr;
  // Line storage, struct-of-arrays, set-major (`sets * ways` each): the hit
  // scan touches only tags_ (kInvalidTag = empty way, so no validity array
  // rides along), the victim filter only tags_/owner_.
  std::vector<std::uint64_t> tags_;
  std::vector<ThreadId> owner_;          ///< inserting thread
  std::vector<ThreadId> last_accessor_;  ///< most recent toucher
  std::vector<std::uint8_t> dirty_;      ///< eviction costs a writeback
  std::vector<std::uint16_t> owned_;     // sets * num_threads
  /// Valid lines per set; skips the invalid-way scan once a set is full
  /// (the steady state) and bounds the first-invalid search otherwise.
  std::vector<std::uint16_t> fill_count_;
  /// Per-thread total of owned lines across all sets, maintained on
  /// fill/evict/flush so owned_total() is O(1) instead of an O(sets) sweep.
  std::vector<std::uint64_t> owned_totals_;
  /// Block->way index (only when index_kind_ == kHash); mirrors the valid
  /// lines exactly — see block_index.hpp for the invariant.
  std::unique_ptr<BlockWayIndex> index_;
  std::vector<std::uint32_t> targets_;
  /// Per-thread CLOS way masks (kClosWayMask only; empty otherwise).
  std::vector<WayMask> ranges_;
  CacheStats stats_;
  LookupStats lookup_stats_;
  std::uint64_t flushed_on_last_retarget_ = 0;
};

}  // namespace capart::mem
