// Pluggable replacement policies for the unified cache core.
//
// Every cache structure in the simulator (private L1s, the shared L2 in all
// its partitioned organizations, the coloring cache's sets) victimizes
// through one of these policies. The paper's §V mechanism assumes true LRU;
// no real CMP implements true LRU at 64 ways, so the core also offers the
// two approximations hardware actually ships — tree-PLRU and SRRIP — to ask
// whether intra-application partitioning survives realistic replacement
// (the abl_replacement ablation; cf. the reuse-aware partitioning and LFOC
// lines of work in PAPERS.md).
//
// Partition enforcement composes with replacement through the `Eligible`
// filter: the cache core restricts the victim search to a subset of ways
// (foreign-owned, own, any) and the policy picks its preferred victim within
// that subset. For true LRU this is exactly "the LRU line among the subset";
// for PLRU and SRRIP it is the natural constrained generalization used by
// way-partitioning hardware (mask the tree walk / the RRPV scan).
//
// Metadata is compact and per-set — a recency permutation (LRU), a node-bit
// vector (PLRU), 2-bit RRPVs (SRRIP) — instead of the former per-line 64-bit
// stamps, which forced a full 64-stamp rescan on every miss.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/types.hpp"

namespace capart::mem {

/// Sentinel tag of an empty (invalid) way in the struct-of-arrays tag store
/// shared by the cache core and the UMON shadow directories: validity is
/// folded into the tag array itself — a way is valid iff its tag differs from
/// kInvalidTag — so the hit probe is a pure contiguous 64-bit compare loop
/// (one cache line of tags for 8 ways) with no second validity array to
/// stride through, and it vectorizes directly (see simd.hpp). No real block
/// can collide: block numbers are addresses divided by the line size, and
/// the address space tops out far below 2^64 (the shared region base is
/// 2^52; cache_core DCHECKs the invariant on every access).
inline constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

/// Replacement policy of one cache structure. kTrueLru is the paper-faithful
/// configuration; kTreePlru and kSrrip are the hardware-realism extensions.
enum class ReplacementKind : std::uint8_t {
  kTrueLru,
  kTreePlru,
  kSrrip,
};

std::string_view to_string(ReplacementKind kind) noexcept;

/// Parses "lru" / "plru" / "srrip"; returns false on anything else.
bool parse_replacement(std::string_view name, ReplacementKind& out) noexcept;

/// All replacement kinds, in a stable order (for sweeps and tests).
inline constexpr ReplacementKind kAllReplacementKinds[] = {
    ReplacementKind::kTrueLru,
    ReplacementKind::kTreePlru,
    ReplacementKind::kSrrip,
};

/// Compact per-set recency order: for each set, the ways listed MRU -> LRU,
/// plus the inverse permutation for O(1) position lookup. This is the shared
/// true-LRU metadata of the cache core's LRU policy and the shadow-tag
/// utility monitor (whose auxiliary directory is LRU by definition,
/// whatever the main cache runs).
class LruStack {
 public:
  LruStack(std::uint32_t sets, std::uint32_t ways);

  /// Moves `way` to the MRU position of `set`.
  void touch(std::uint32_t set, std::uint32_t way);

  /// Recency position of `way` in `set`: 0 = MRU, ways-1 = LRU.
  std::uint32_t depth_of(std::uint32_t set, std::uint32_t way) const noexcept {
    return pos_[static_cast<std::size_t>(set) * ways_ + way];
  }

  /// The way at recency position `depth` of `set` (0 = MRU).
  std::uint32_t way_at(std::uint32_t set, std::uint32_t depth) const noexcept {
    return order_[static_cast<std::size_t>(set) * ways_ + depth];
  }

  /// Scans from the LRU end toward MRU and returns the first way satisfying
  /// `pred`, or `ways()` when none does.
  template <class Pred>
  std::uint32_t find_from_lru(std::uint32_t set, Pred&& pred) const {
    const std::uint16_t* order = &order_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t d = ways_; d-- > 0;) {
      const std::uint32_t way = order[d];
      if (pred(way)) return way;
    }
    return ways_;
  }

  /// Restores the initial identity order in every set.
  void reset();

  std::uint32_t ways() const noexcept { return ways_; }

 private:
  std::uint32_t ways_;
  std::vector<std::uint16_t> order_;  // sets x ways, MRU first
  std::vector<std::uint16_t> pos_;    // sets x ways, way -> position
};

/// The same per-set true-LRU recency order as LruStack, stored as an
/// intrusive doubly-linked list instead of a permutation: move-to-front —
/// the operation every single access performs — is O(1) link surgery rather
/// than an O(depth) rotate of the order array, which was the hottest loop
/// left in the cache core once the block->way index removed the tag scan.
/// The victim search walks from the LRU end exactly as LruStack's does, so
/// victim choice is bit-identical. LruStack remains for consumers that need
/// O(1) depth_of / way_at (the UMON shadow directory's stack-depth query).
class LruList {
 public:
  LruList(std::uint32_t sets, std::uint32_t ways);

  /// Moves `way` to the MRU position of `set` in O(1).
  void touch(std::uint32_t set, std::uint32_t way) noexcept {
    if (head_[set] == way) return;
    std::uint16_t* prev = &prev_[static_cast<std::size_t>(set) * ways_];
    std::uint16_t* next = &next_[static_cast<std::size_t>(set) * ways_];
    const std::uint16_t p = prev[way];  // valid: way is not the head
    if (way == tail_[set]) {
      tail_[set] = p;
    } else {
      prev[next[way]] = p;
    }
    next[p] = next[way];
    prev[head_[set]] = static_cast<std::uint16_t>(way);
    next[way] = head_[set];
    head_[set] = static_cast<std::uint16_t>(way);
  }

  /// Walks from the LRU end toward MRU and returns the first way satisfying
  /// `pred`, or `ways()` when none does.
  template <class Pred>
  std::uint32_t find_from_lru(std::uint32_t set, Pred&& pred) const {
    const std::uint16_t* prev = &prev_[static_cast<std::size_t>(set) * ways_];
    const std::uint32_t head = head_[set];
    std::uint32_t way = tail_[set];
    while (true) {
      if (pred(way)) return way;
      if (way == head) return ways_;
      way = prev[way];
    }
  }

  /// The LRU way of `set` in O(1) — what find_from_lru returns when every
  /// way is eligible, which lets the cache core's victim fast path skip the
  /// walk (and the virtual policy dispatch) entirely for true LRU.
  std::uint32_t lru_way(std::uint32_t set) const noexcept {
    return tail_[set];
  }

  /// Restores the initial identity order (way 0 MRU ... way ways-1 LRU) in
  /// every set — the same order LruStack::reset produces.
  void reset();

  std::uint32_t ways() const noexcept { return ways_; }

 private:
  std::uint32_t ways_;
  std::vector<std::uint16_t> prev_;  // sets x ways; undefined at the head
  std::vector<std::uint16_t> next_;  // sets x ways; undefined at the tail
  std::vector<std::uint16_t> head_;  // per set, MRU way
  std::vector<std::uint16_t> tail_;  // per set, LRU way
};

/// Interface the cache core victimizes through.
class ReplacementPolicy {
 public:
  /// Victim-eligibility filter: a way qualifies when its line is valid (its
  /// tag is not kInvalidTag) and matches the ownership scope. The arrays view
  /// the candidate set's lines (cache-core storage is set-major, so these are
  /// spans of `ways` entries).
  struct Eligible {
    enum class Scope : std::uint8_t {
      kAnyValid,
      kOwnedBy,
      kNotOwnedBy,
      /// CAT-style way masks: only ways in [range_lo, range_hi) qualify,
      /// whoever owns them (CLOS masks constrain placement, not ownership).
      kWayRange,
    };

    const std::uint64_t* tags = nullptr;
    const ThreadId* owner = nullptr;
    Scope scope = Scope::kAnyValid;
    ThreadId thread = 0;
    std::uint32_t range_lo = 0;  ///< kWayRange only
    std::uint32_t range_hi = 0;  ///< kWayRange only, exclusive

    bool operator()(std::uint32_t way) const noexcept {
      if (tags[way] == kInvalidTag) return false;
      switch (scope) {
        case Scope::kAnyValid: return true;
        case Scope::kOwnedBy: return owner[way] == thread;
        case Scope::kNotOwnedBy: return owner[way] != thread;
        case Scope::kWayRange: return way >= range_lo && way < range_hi;
      }
      return false;
    }
  };

  virtual ~ReplacementPolicy() = default;

  virtual ReplacementKind kind() const noexcept = 0;

  /// The true-LRU policy's recency list, or nullptr for every other policy.
  /// Lets the cache core inline the per-access touch (on_hit == on_fill ==
  /// LruList::touch for true LRU) instead of paying a virtual dispatch on
  /// the hot path; victim selection stays virtual.
  virtual LruList* lru_list() noexcept { return nullptr; }

  /// A miss filled (set, way).
  virtual void on_fill(std::uint32_t set, std::uint32_t way) = 0;

  /// A hit touched (set, way).
  virtual void on_hit(std::uint32_t set, std::uint32_t way) = 0;

  /// Picks the replacement victim among the eligible ways of `set`. The
  /// caller guarantees at least one way is eligible.
  virtual std::uint32_t victim(std::uint32_t set, const Eligible& eligible) = 0;

  /// Drops all recency state (cache flush).
  virtual void reset() = 0;
};

std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                    std::uint32_t sets,
                                                    std::uint32_t ways);

}  // namespace capart::mem
