#include "src/mem/cache_stats.hpp"

namespace capart::mem {

ThreadCacheCounters& ThreadCacheCounters::operator+=(
    const ThreadCacheCounters& o) noexcept {
  accesses += o.accesses;
  hits += o.hits;
  misses += o.misses;
  inter_thread_hits += o.inter_thread_hits;
  inter_thread_evictions_caused += o.inter_thread_evictions_caused;
  inter_thread_evictions_suffered += o.inter_thread_evictions_suffered;
  intra_thread_evictions += o.intra_thread_evictions;
  writebacks += o.writebacks;
  return *this;
}

void CacheStats::reset() noexcept {
  for (auto& c : per_thread_) c = ThreadCacheCounters{};
}

void CacheStats::accumulate(const CacheStats& o) noexcept {
  CAPART_DCHECK(per_thread_.size() == o.per_thread_.size(),
                "accumulating stats with a different thread count");
  for (std::size_t t = 0; t < per_thread_.size(); ++t) {
    per_thread_[t] += o.per_thread_[t];
  }
}

ThreadCacheCounters CacheStats::total() const noexcept {
  ThreadCacheCounters sum;
  for (const auto& c : per_thread_) sum += c;
  return sum;
}

double CacheStats::inter_thread_fraction() const noexcept {
  const ThreadCacheCounters sum = total();
  if (sum.accesses == 0) return 0.0;
  return static_cast<double>(sum.inter_thread_interactions()) /
         static_cast<double>(sum.accesses);
}

double CacheStats::constructive_fraction() const noexcept {
  const ThreadCacheCounters sum = total();
  const std::uint64_t inter = sum.inter_thread_interactions();
  if (inter == 0) return 0.0;
  return static_cast<double>(sum.inter_thread_hits) /
         static_cast<double>(inter);
}

}  // namespace capart::mem
