#include "src/mem/set_assoc_cache.hpp"

namespace capart::mem {

SetAssocCache::SetAssocCache(const CacheGeometry& geometry)
    : geometry_(geometry) {
  geometry_.validate();
  lines_.resize(static_cast<std::size_t>(geometry_.sets) * geometry_.ways);
}

bool SetAssocCache::access(Addr addr, AccessType /*type*/) {
  ++accesses_;
  ++tick_;
  const std::uint64_t block = geometry_.block_of(addr);
  const std::uint32_t set = geometry_.set_of_block(block);
  Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];

  Line* invalid = nullptr;
  Line* lru = nullptr;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.block == block) {
      line.stamp = tick_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      if (invalid == nullptr) invalid = &line;
    } else if (lru == nullptr || line.stamp < lru->stamp) {
      lru = &line;
    }
  }
  Line* victim = (invalid != nullptr) ? invalid : lru;
  victim->valid = true;
  victim->block = block;
  victim->stamp = tick_;
  return false;
}

bool SetAssocCache::contains(Addr addr) const noexcept {
  const std::uint64_t block = geometry_.block_of(addr);
  const std::uint32_t set = geometry_.set_of_block(block);
  const Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].valid && base[w].block == block) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (Line& line : lines_) line.valid = false;
}

}  // namespace capart::mem
