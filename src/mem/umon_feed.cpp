#include "src/mem/umon_feed.hpp"

#include <algorithm>

namespace capart::mem {

ShardedUmonFeed::ShardedUmonFeed(UtilityMonitor& umon, std::uint32_t jobs)
    : umon_(umon) {
  const std::uint32_t workers = std::min(std::max(jobs, 1u), umon.shards());
  if (workers <= 1) return;  // synchronous degenerate case: no threads
  shards_.resize(workers);
  for (std::uint32_t s = 0; s < workers; ++s) {
    shards_[s].pending.reserve(kBatch);
    shards_[s].worker = std::thread([this, s] { run_worker(s); });
  }
}

ShardedUmonFeed::~ShardedUmonFeed() {
  if (shards_.empty()) return;
  drain();
  for (Shard& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.stop = true;
    }
    shard.work_ready.notify_one();
  }
  for (Shard& shard : shards_) shard.worker.join();
}

void ShardedUmonFeed::push(ThreadId thread, Addr addr) {
  std::uint32_t shadow_set = 0;
  if (!umon_.route(addr, shadow_set)) return;
  const std::uint32_t shard_id = umon_.shard_of(shadow_set);
  if (shards_.empty()) {
    // Synchronous: one worker would serialize everything anyway.
    umon_.observe_routed(shard_id, thread, addr, shadow_set);
    return;
  }
  // Feed workers modulo the worker count: when the monitor has more counter
  // shards than workers, each worker still serializes every shard it owns.
  const std::uint32_t w =
      shard_id % static_cast<std::uint32_t>(shards_.size());
  Shard& shard = shards_[w];
  shard.pending.push_back(
      Entry{.addr = addr, .shadow_set = shadow_set, .thread = thread});
  if (shard.pending.size() >= kBatch) flush_shard(w);
}

void ShardedUmonFeed::flush_shard(std::uint32_t shard_id) {
  Shard& shard = shards_[shard_id];
  if (shard.pending.empty()) return;
  std::vector<Entry> batch;
  batch.reserve(kBatch);
  batch.swap(shard.pending);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.batches.push_back(std::move(batch));
  }
  shard.work_ready.notify_one();
}

void ShardedUmonFeed::drain() {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) flush_shard(s);
  for (Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.idle.wait(lock,
                    [&shard] { return shard.batches.empty() && !shard.busy; });
  }
}

void ShardedUmonFeed::run_worker(std::uint32_t shard_id) {
  Shard& shard = shards_[shard_id];
  std::unique_lock<std::mutex> lock(shard.mutex);
  while (true) {
    shard.work_ready.wait(
        lock, [&shard] { return shard.stop || !shard.batches.empty(); });
    if (shard.batches.empty()) {
      if (shard.stop) return;
      continue;
    }
    std::vector<Entry> batch = std::move(shard.batches.front());
    shard.batches.pop_front();
    shard.busy = true;
    lock.unlock();
    for (const Entry& e : batch) {
      umon_.observe_routed(umon_.shard_of(e.shadow_set), e.thread, e.addr,
                           e.shadow_set);
    }
    lock.lock();
    shard.busy = false;
    if (shard.batches.empty()) shard.idle.notify_all();
  }
}

}  // namespace capart::mem
