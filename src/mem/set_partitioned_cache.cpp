#include "src/mem/set_partitioned_cache.hpp"

#include <algorithm>

#include "src/common/check.hpp"

namespace capart::mem {

namespace {

const CacheGeometry& checked(const CacheGeometry& geometry,
                             ThreadId num_threads, std::uint32_t colors,
                             std::uint32_t page_bytes) {
  geometry.validate();
  CAPART_CHECK(num_threads >= 1, "set-partitioned cache needs >= 1 thread");
  CAPART_CHECK(colors >= num_threads, "need at least one color per thread");
  CAPART_CHECK(colors <= geometry.sets && geometry.sets % colors == 0,
               "colors must divide the set count");
  CAPART_CHECK(page_bytes >= geometry.line_bytes &&
                   page_bytes % geometry.line_bytes == 0,
               "page size must be a multiple of the line size");
  return geometry;
}

}  // namespace

SetPartitionedCache::SetPartitionedCache(const CacheGeometry& geometry,
                                         ThreadId num_threads,
                                         std::uint32_t colors,
                                         std::uint32_t page_bytes)
    : num_threads_(num_threads),
      colors_(colors),
      sets_per_color_(geometry.sets / colors),
      blocks_per_page_(page_bytes / geometry.line_bytes),
      core_(checked(geometry, num_threads, colors, page_bytes), num_threads,
            PartitionEnforcement::kSetColoring) {
  next_color_slot_.assign(num_threads_, 0);
  // Equal initial split, like the way-partitioned cache.
  targets_.assign(num_threads_, colors_ / num_threads_);
  for (std::uint32_t t = 0; t < colors_ % num_threads_; ++t) targets_[t] += 1;
  assign_colors();
}

void SetPartitionedCache::assign_colors() {
  color_owner_.assign(colors_, 0);
  thread_colors_.assign(num_threads_, {});
  std::uint32_t next = 0;
  for (ThreadId t = 0; t < num_threads_; ++t) {
    for (std::uint32_t c = 0; c < targets_[t]; ++c) {
      color_owner_[next] = t;
      thread_colors_[t].push_back(next);
      ++next;
    }
  }
  CAPART_CHECK(next == colors_, "color assignment must cover all colors");
  // Lazy page migration (Lin et al.): a page keeps its color as long as its
  // owner still holds that color; only pages sitting on *revoked* colors
  // remap. Their cached lines are stranded in the old sets and age out —
  // the recoloring cost, paid only for the colors that actually moved.
  for (auto& [page, info] : pages_) {
    if (color_owner_[info.color] == info.owner) continue;
    const auto& own = thread_colors_[info.owner];
    info.color = own[page % own.size()];
  }
}

void SetPartitionedCache::set_targets(
    std::span<const std::uint32_t> targets) {
  CAPART_CHECK(targets.size() == num_threads_,
               "one color target per thread required");
  std::uint32_t sum = 0;
  for (std::uint32_t t : targets) {
    CAPART_CHECK(t >= 1, "every thread must keep at least one color");
    sum += t;
  }
  CAPART_CHECK(sum == colors_, "color targets must sum to the color count");
  const bool changed = !std::equal(targets.begin(), targets.end(),
                                   targets_.begin());
  targets_.assign(targets.begin(), targets.end());
  if (changed) assign_colors();
}

SetPartitionedCache::PageInfo& SetPartitionedCache::page_of(
    ThreadId toucher, std::uint64_t block) {
  const std::uint64_t page = block / blocks_per_page_;
  auto [it, inserted] = pages_.try_emplace(page);
  if (inserted) {
    // First-touch placement: the page belongs to the first thread that
    // touches it and gets the next of that thread's colors, round-robin.
    PageInfo& info = it->second;
    info.owner = toucher;
    const auto& own = thread_colors_[toucher];
    info.color = own[next_color_slot_[toucher] % own.size()];
    next_color_slot_[toucher] += 1;
  }
  return it->second;
}

std::uint32_t SetPartitionedCache::set_of(std::uint64_t block,
                                          const PageInfo& info) const {
  return info.color * sets_per_color_ +
         static_cast<std::uint32_t>(block % sets_per_color_);
}

SetPartitionedCache::AccessResult SetPartitionedCache::access(
    ThreadId thread, Addr addr, AccessType type) {
  CAPART_CHECK(thread < num_threads_, "thread id out of range");
  const std::uint64_t block = geometry().block_of(addr);
  const PageInfo& info = page_of(thread, block);
  return core_.access_in_set(thread, block, set_of(block, info), type);
}

std::vector<std::uint32_t> SetPartitionedCache::colors_of(
    ThreadId thread) const {
  CAPART_CHECK(thread < num_threads_, "colors_of: thread out of range");
  return thread_colors_[thread];
}

bool SetPartitionedCache::contains(Addr addr) const {
  const std::uint64_t block = geometry().block_of(addr);
  const auto it = pages_.find(block / blocks_per_page_);
  if (it == pages_.end()) return false;
  return core_.contains_block_in_set(block, set_of(block, it->second));
}

}  // namespace capart::mem
