#include "src/mem/set_partitioned_cache.hpp"

#include <numeric>

#include "src/common/check.hpp"

namespace capart::mem {

SetPartitionedCache::SetPartitionedCache(const CacheGeometry& geometry,
                                         ThreadId num_threads,
                                         std::uint32_t colors,
                                         std::uint32_t page_bytes)
    : geometry_(geometry),
      num_threads_(num_threads),
      colors_(colors),
      sets_per_color_(geometry.sets / colors),
      blocks_per_page_(page_bytes / geometry.line_bytes),
      stats_(num_threads) {
  geometry_.validate();
  CAPART_CHECK(num_threads_ >= 1, "set-partitioned cache needs >= 1 thread");
  CAPART_CHECK(colors_ >= num_threads_,
               "need at least one color per thread");
  CAPART_CHECK(colors_ <= geometry_.sets && geometry_.sets % colors_ == 0,
               "colors must divide the set count");
  CAPART_CHECK(page_bytes >= geometry_.line_bytes &&
                   page_bytes % geometry_.line_bytes == 0,
               "page size must be a multiple of the line size");
  lines_.resize(static_cast<std::size_t>(geometry_.sets) * geometry_.ways);
  next_color_slot_.assign(num_threads_, 0);
  // Equal initial split, like the way-partitioned cache.
  targets_.assign(num_threads_, colors_ / num_threads_);
  for (std::uint32_t t = 0; t < colors_ % num_threads_; ++t) targets_[t] += 1;
  assign_colors();
}

void SetPartitionedCache::assign_colors() {
  color_owner_.assign(colors_, 0);
  thread_colors_.assign(num_threads_, {});
  std::uint32_t next = 0;
  for (ThreadId t = 0; t < num_threads_; ++t) {
    for (std::uint32_t c = 0; c < targets_[t]; ++c) {
      color_owner_[next] = t;
      thread_colors_[t].push_back(next);
      ++next;
    }
  }
  CAPART_CHECK(next == colors_, "color assignment must cover all colors");
  // Lazy page migration (Lin et al.): a page keeps its color as long as its
  // owner still holds that color; only pages sitting on *revoked* colors
  // remap. Their cached lines are stranded in the old sets and age out —
  // the recoloring cost, paid only for the colors that actually moved.
  for (auto& [page, info] : pages_) {
    if (color_owner_[info.color] == info.owner) continue;
    const auto& own = thread_colors_[info.owner];
    info.color = own[page % own.size()];
  }
}

void SetPartitionedCache::set_targets(
    std::span<const std::uint32_t> targets) {
  CAPART_CHECK(targets.size() == num_threads_,
               "one color target per thread required");
  std::uint32_t sum = 0;
  for (std::uint32_t t : targets) {
    CAPART_CHECK(t >= 1, "every thread must keep at least one color");
    sum += t;
  }
  CAPART_CHECK(sum == colors_, "color targets must sum to the color count");
  const bool changed = !std::equal(targets.begin(), targets.end(),
                                   targets_.begin());
  targets_.assign(targets.begin(), targets.end());
  if (changed) assign_colors();
}

SetPartitionedCache::PageInfo& SetPartitionedCache::page_of(
    ThreadId toucher, std::uint64_t block) {
  const std::uint64_t page = block / blocks_per_page_;
  auto [it, inserted] = pages_.try_emplace(page);
  if (inserted) {
    // First-touch placement: the page belongs to the first thread that
    // touches it and gets the next of that thread's colors, round-robin.
    PageInfo& info = it->second;
    info.owner = toucher;
    const auto& own = thread_colors_[toucher];
    info.color = own[next_color_slot_[toucher] % own.size()];
    next_color_slot_[toucher] += 1;
  }
  return it->second;
}

std::uint32_t SetPartitionedCache::set_of(std::uint64_t block,
                                          const PageInfo& info) const {
  return info.color * sets_per_color_ +
         static_cast<std::uint32_t>(block % sets_per_color_);
}

SetPartitionedCache::AccessResult SetPartitionedCache::access(
    ThreadId thread, Addr addr, AccessType /*type*/) {
  CAPART_CHECK(thread < num_threads_, "thread id out of range");
  ++tick_;
  ThreadCacheCounters& mine = stats_.thread(thread);
  ++mine.accesses;

  const std::uint64_t block = geometry_.block_of(addr);
  const PageInfo& info = page_of(thread, block);
  const std::uint32_t set = set_of(block, info);
  Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];

  Line* invalid = nullptr;
  Line* lru = nullptr;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.block == block) {
      AccessResult result{.hit = true};
      ++mine.hits;
      if (line.last_accessor != thread) {
        result.inter_thread_hit = true;
        ++mine.inter_thread_hits;
      }
      line.stamp = tick_;
      line.last_accessor = thread;
      return result;
    }
    if (!line.valid) {
      if (invalid == nullptr) invalid = &line;
    } else if (lru == nullptr || line.stamp < lru->stamp) {
      lru = &line;
    }
  }

  ++mine.misses;
  AccessResult result{};
  Line* victim = invalid != nullptr ? invalid : lru;
  if (victim->valid) {
    if (victim->last_accessor != thread) {
      result.inter_thread_eviction = true;
      ++mine.inter_thread_evictions_caused;
      ++stats_.thread(victim->last_accessor).inter_thread_evictions_suffered;
    } else {
      ++mine.intra_thread_evictions;
    }
  }
  victim->valid = true;
  victim->block = block;
  victim->stamp = tick_;
  victim->last_accessor = thread;
  return result;
}

std::vector<std::uint32_t> SetPartitionedCache::colors_of(
    ThreadId thread) const {
  CAPART_CHECK(thread < num_threads_, "colors_of: thread out of range");
  return thread_colors_[thread];
}

bool SetPartitionedCache::contains(Addr addr) const {
  const std::uint64_t block = geometry_.block_of(addr);
  const auto it = pages_.find(block / blocks_per_page_);
  if (it == pages_.end()) return false;
  const std::uint32_t set = set_of(block, it->second);
  const Line* base = &lines_[static_cast<std::size_t>(set) * geometry_.ways];
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].valid && base[w].block == block) return true;
  }
  return false;
}

}  // namespace capart::mem
