// Set partitioning via OS page coloring — the software-only alternative
// mechanism to §V's way partitioning (paper §II cites Lin et al., HPCA'08,
// and Zhang et al., EuroSys'09).
//
// The cache's sets are grouped into *colors*; the OS assigns each thread a
// set of colors and maps the thread's pages into them, so capacity is
// partitioned by sets instead of ways. Differences from way partitioning
// that this model captures:
//
//  * ownership is per *page*, assigned at first touch (the common OpenMP
//    placement policy): pages shared between threads land in whichever
//    thread's colors the first toucher owned — sharing punches holes in the
//    isolation, a known weakness of coloring;
//  * repartitioning means *recoloring*: when targets change, the affected
//    pages remap to new sets and their cached lines are stranded (they age
//    out as garbage), so the transition cost is paid in capacity — unlike
//    the replacement-policy mechanism, which migrates gradually for free;
//  * each thread keeps the cache's full associativity within its colors.
//
// The class implements the same target interface as the way-partitioned
// cache — targets are counted in colors, and with colors == ways (the
// default pairing of 64 colors with the 64-way cache) policies are reusable
// unchanged. See SetPartitionedL2 for the L2Organization adapter.
//
// Only the page-coloring machinery lives here; line storage, replacement
// (`CacheGeometry::repl`), and statistics delegate to `CacheCore` in its
// kSetColoring mode, where isolation comes entirely from the block->set
// mapping and victim choice within a set is unconstrained.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/types.hpp"
#include "src/mem/cache_config.hpp"
#include "src/mem/cache_core.hpp"
#include "src/mem/cache_stats.hpp"

namespace capart::mem {

class SetPartitionedCache {
 public:
  /// `colors` must divide the set count; `page_bytes` is the coloring
  /// granularity (default 4 KB pages).
  SetPartitionedCache(const CacheGeometry& geometry, ThreadId num_threads,
                      std::uint32_t colors = 64,
                      std::uint32_t page_bytes = 4096);

  using AccessResult = CacheCore::AccessResult;

  AccessResult access(ThreadId thread, Addr addr, AccessType type);

  /// Installs new per-thread *color* targets (one per thread, each >= 1,
  /// summing to the color count). Colors move between threads immediately
  /// and every affected page is recolored; the stranded lines of recolored
  /// pages stay in their old sets until evicted (the recoloring cost).
  void set_targets(std::span<const std::uint32_t> targets);

  std::span<const std::uint32_t> targets() const noexcept { return targets_; }
  const CacheStats& stats() const noexcept { return core_.stats(); }
  const CacheGeometry& geometry() const noexcept { return core_.geometry(); }
  std::uint32_t colors() const noexcept { return colors_; }
  IndexKind index_kind() const noexcept { return core_.index_kind(); }
  const CacheCore::LookupStats& lookup_stats() const noexcept {
    return core_.lookup_stats();
  }

  /// Colors currently assigned to `thread` (introspection/tests).
  std::vector<std::uint32_t> colors_of(ThreadId thread) const;

  /// True when the block containing `addr` is resident in the set its
  /// current coloring maps it to.
  bool contains(Addr addr) const;

 private:
  struct PageInfo {
    ThreadId owner = kNoThread;
    std::uint32_t color = 0;
  };

  /// Recomputes the color -> thread assignment from targets_ (contiguous
  /// ranges, deterministic) and recolors every known page.
  void assign_colors();

  /// Set index for `block` under page `info`.
  std::uint32_t set_of(std::uint64_t block, const PageInfo& info) const;

  /// Page of a block, and the page's info (created on first touch).
  PageInfo& page_of(ThreadId toucher, std::uint64_t block);

  ThreadId num_threads_;
  std::uint32_t colors_;
  std::uint32_t sets_per_color_;
  std::uint64_t blocks_per_page_;
  std::vector<std::uint32_t> targets_;       // colors per thread
  std::vector<ThreadId> color_owner_;        // color -> thread
  std::vector<std::vector<std::uint32_t>> thread_colors_;  // thread -> colors
  std::unordered_map<std::uint64_t, PageInfo> pages_;
  std::vector<std::uint64_t> next_color_slot_;  // round-robin per thread
  CacheCore core_;
};

}  // namespace capart::mem
