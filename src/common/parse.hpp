// Strict command-line value parsing shared by the CLI front ends
// (tools/capart_sim, bench/bench_common).
//
// strtoull alone is a trap for flag parsing: it accepts a leading '-' and
// wraps the negation into a huge unsigned value ("--intervals=-1" became
// 4294967295), and it reports overflow only through errno, which callers
// forgot to check before narrowing casts truncated the value silently
// ("--threads=4294967300" became 4). These helpers reject signs, check
// ERANGE, and range-check against the destination type's bounds, throwing
// ConfigError with the flag name so front ends print one clear line and
// exit with the usage status.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace capart {

/// Parses an unsigned decimal integer in [0, max]. Rejects empty values,
/// any sign character, trailing garbage, and values that overflow either
/// std::uint64_t or `max`. Throws ConfigError naming `flag`.
std::uint64_t parse_u64_flag(std::string_view value, std::string_view flag,
                             std::uint64_t max =
                                 std::numeric_limits<std::uint64_t>::max());

/// parse_u64_flag bounded to a 32-bit destination (--intervals, --l2-ways,
/// --threads, ...): the cast at the call site can never truncate.
std::uint32_t parse_u32_flag(std::string_view value, std::string_view flag,
                             std::uint32_t max =
                                 std::numeric_limits<std::uint32_t>::max());

/// Parses a finite non-negative decimal number (e.g. --arm-deadline=0.5).
/// Throws ConfigError naming `flag` on empty/signed/garbage/overflow input.
double parse_f64_flag(std::string_view value, std::string_view flag);

/// Splits a comma-separated flag value ("cg,mg") into its items. Empty
/// items — "", ",cg", "cg,,mg", trailing commas — throw ConfigError naming
/// `flag` instead of leaking an empty string into profile/policy lookup,
/// which would only fail much later and far less legibly.
std::vector<std::string> split_flag_list(std::string_view value,
                                         std::string_view flag);

}  // namespace capart
