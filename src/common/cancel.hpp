// Cooperative cancellation token for bounded experiment runs.
//
// A CancelToken is shared between a controller (the BatchRunner, which arms
// per-arm deadlines and broadcasts fail-fast cancellation) and a runner (the
// Driver, which polls should_stop() at interval boundaries — never on the
// per-access hot path, so a token costs one relaxed load plus a clock read
// per interval). Runs therefore stop at deterministic simulation points:
// whether an arm times out depends on the wall clock, but where it stops is
// always an interval boundary.
#pragma once

#include <atomic>
#include <chrono>

namespace capart {

class CancelToken {
 public:
  /// Requests cancellation (thread-safe; callable from any thread). Sticky:
  /// a cancelled token stays cancelled across rearm() so retries of a
  /// fail-fast-cancelled arm stop immediately.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// (Re)arms the deadline `seconds` from now; <= 0 disarms it. Called by
  /// the owning worker before each attempt — not safe to race with
  /// should_stop() from another thread, which the batch layer never does.
  void rearm_deadline(double seconds) noexcept {
    has_deadline_ = seconds > 0.0;
    if (has_deadline_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
    }
  }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool deadline_expired() const noexcept {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// The poll the driver runs at each interval boundary.
  bool should_stop() const noexcept {
    return cancelled() || deadline_expired();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace capart
