// Lightweight always-on invariant checking.
//
// Simulator state-machine bugs silently corrupt statistics, so invariants are
// checked in release builds too; the predicates on hot paths are O(1).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace capart::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "capart check failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg);
  std::abort();
}

}  // namespace capart::detail

#define CAPART_CHECK(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::capart::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (false)
