// Lightweight always-on invariant checking.
//
// Simulator state-machine bugs silently corrupt statistics, so invariants are
// checked in release builds too; the predicates on hot paths are O(1).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace capart::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "capart check failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg);
  std::abort();
}

}  // namespace capart::detail

#define CAPART_CHECK(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::capart::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (false)

// Debug-only variant for per-access hot paths: argument validation that a
// caller bug would trip on the very first access does not need to be re-run
// millions of times per second in release builds (the perf-regression
// harness in tools/capart_perfsmoke guards the cost). Active in builds
// without NDEBUG and in sanitizer builds (CAPART_SANITIZE defines
// CAPART_ENABLE_DCHECKS); compiled out otherwise.
#if !defined(NDEBUG) || defined(CAPART_ENABLE_DCHECKS)
#define CAPART_DCHECK(expr, msg) CAPART_CHECK(expr, msg)
#define CAPART_DCHECKS_ENABLED 1
#else
#define CAPART_DCHECK(expr, msg) \
  do {                           \
  } while (false)
#define CAPART_DCHECKS_ENABLED 0
#endif

namespace capart {

/// Whether CAPART_DCHECK is active in this build — death tests on hot-path
/// argument validation gate their expectations on it.
inline constexpr bool kDchecksEnabled = CAPART_DCHECKS_ENABLED != 0;

}  // namespace capart
