// Deterministic, seedable pseudo-random number generation.
//
// Simulations must be bit-reproducible across runs and platforms, so we
// implement xoshiro256** (Blackman & Vigna) rather than relying on the
// implementation-defined distributions of <random>.
#pragma once

#include <array>
#include <cstdint>

namespace capart {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator, and additionally provides the
/// bounded-integer / unit-double helpers the trace generators need, with
/// platform-independent results.
///
/// The per-draw methods are defined inline: the trace generators draw tens of
/// millions of times per run, and an out-of-line xoshiro step costs more in
/// call overhead than in arithmetic.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift bounded generation (biased by < 2^-64 for the
    // bounds used here; acceptable for workload synthesis).
    __extension__ using uint128 = unsigned __int128;
    const std::uint64_t x = (*this)();
    const uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double unit() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return unit() < p;
  }

  /// Derives an independent stream for a child component. Deterministic in
  /// (parent seed, tag), so component streams never depend on call order.
  Rng fork(std::uint64_t tag) const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
  std::uint64_t seed_;  // retained so fork() is order-independent
};

}  // namespace capart
