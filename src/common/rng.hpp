// Deterministic, seedable pseudo-random number generation.
//
// Simulations must be bit-reproducible across runs and platforms, so we
// implement xoshiro256** (Blackman & Vigna) rather than relying on the
// implementation-defined distributions of <random>.
#pragma once

#include <array>
#include <cstdint>

namespace capart {

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator, and additionally provides the
/// bounded-integer / unit-double helpers the trace generators need, with
/// platform-independent results.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double unit() noexcept;

  /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
  bool chance(double p) noexcept;

  /// Derives an independent stream for a child component. Deterministic in
  /// (parent seed, tag), so component streams never depend on call order.
  Rng fork(std::uint64_t tag) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  std::uint64_t seed_;  // retained so fork() is order-independent
};

}  // namespace capart
