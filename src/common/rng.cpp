#include "src/common/rng.hpp"

namespace capart {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step; used only for seeding.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : state_{}, seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro requires a nonzero state; splitmix64 of any seed yields one with
  // overwhelming probability, but guard the pathological case anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift bounded generation (biased by < 2^-64 for the
  // bounds used here; acceptable for workload synthesis).
  __extension__ using uint128 = unsigned __int128;
  const std::uint64_t x = (*this)();
  const uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::unit() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  // Mix seed and tag through SplitMix64 so sibling streams are decorrelated.
  std::uint64_t s = seed_ ^ (0x6a09e667f3bcc909ULL + tag * 0x2545f4914f6cdd1dULL);
  std::uint64_t derived = splitmix64(s);
  return Rng(derived);
}

}  // namespace capart
