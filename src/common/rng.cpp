#include "src/common/rng.hpp"

namespace capart {
namespace {

/// SplitMix64 step; used only for seeding.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : state_{}, seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro requires a nonzero state; splitmix64 of any seed yields one with
  // overwhelming probability, but guard the pathological case anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  // Mix seed and tag through SplitMix64 so sibling streams are decorrelated.
  std::uint64_t s = seed_ ^ (0x6a09e667f3bcc909ULL + tag * 0x2545f4914f6cdd1dULL);
  std::uint64_t derived = splitmix64(s);
  return Rng(derived);
}

}  // namespace capart
