// Fundamental value types shared across the capart library.
#pragma once

#include <cstdint>
#include <limits>

namespace capart {

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Cycle count on a core-local or global clock.
using Cycles = std::uint64_t;

/// Retired-instruction count.
using Instructions = std::uint64_t;

/// Identifier of an application thread (equivalently, of the core it is
/// pinned to — the paper uses "thread" and "core" interchangeably).
using ThreadId = std::uint32_t;

/// Identifier of an application in hierarchical (multi-application) mode.
using AppId = std::uint32_t;

/// Sentinel for "no thread" (e.g. owner of an invalid cache line).
inline constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();

/// Kind of memory access issued by a core.
enum class AccessType : std::uint8_t { kRead, kWrite };

}  // namespace capart
