#include "src/common/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/common/error.hpp"

namespace capart {
namespace {

[[noreturn]] void invalid(std::string_view flag) {
  const std::string name(flag);
  throw ConfigError(name, "invalid value for " + name);
}

[[noreturn]] void out_of_range(std::string_view flag, std::uint64_t max) {
  const std::string name(flag);
  throw ConfigError(name, "value for " + name + " out of range (max " +
                              std::to_string(max) + ")");
}

}  // namespace

std::uint64_t parse_u64_flag(std::string_view value, std::string_view flag,
                             std::uint64_t max) {
  // A flag without "=value" arrives as an empty view with a null data
  // pointer; copy before strtoull ever dereferences it.
  const std::string copy(value);
  if (copy.empty()) invalid(flag);
  // strtoull accepts "-1" (wrapping to 2^64-1), "+1", leading whitespace and
  // hex; a flag value must be plain decimal digits.
  if (copy[0] < '0' || copy[0] > '9') invalid(flag);
  errno = 0;
  char* end = nullptr;
  const std::uint64_t n = std::strtoull(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) invalid(flag);
  if (errno == ERANGE || n > max) out_of_range(flag, max);
  return n;
}

std::uint32_t parse_u32_flag(std::string_view value, std::string_view flag,
                             std::uint32_t max) {
  return static_cast<std::uint32_t>(parse_u64_flag(value, flag, max));
}

double parse_f64_flag(std::string_view value, std::string_view flag) {
  const std::string copy(value);
  if (copy.empty()) invalid(flag);
  if (copy[0] != '.' && (copy[0] < '0' || copy[0] > '9')) invalid(flag);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) invalid(flag);
  if (errno == ERANGE || !std::isfinite(v) || v < 0.0) {
    invalid(flag);
  }
  return v;
}

std::vector<std::string> split_flag_list(std::string_view value,
                                         std::string_view flag) {
  std::vector<std::string> items;
  std::string_view rest = value;
  for (;;) {
    const auto comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    if (item.empty()) {
      const std::string name(flag);
      throw ConfigError(name, "empty item in " + name + " list");
    }
    items.emplace_back(item);
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return items;
}

}  // namespace capart
