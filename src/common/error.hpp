// Structured, recoverable error types.
//
// The error-handling contract (DESIGN.md "Error handling"): conditions a
// caller can provoke from the outside — a bad flag value, an impossible
// cache geometry, an unknown profile name, an unopenable output file — throw
// capart::Error (or a subclass) and are contained at the experiment-stack
// boundaries: the BatchRunner turns a throwing arm into a failed ArmOutcome
// without touching its siblings, and the CLI front ends print the message
// and exit non-zero. CAPART_CHECK (src/common/check.hpp) remains reserved
// for true internal invariants whose violation means the simulator state is
// already corrupt; those still abort, in release builds too.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace capart {

/// Base class of every recoverable capart error.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Invalid configuration or command-line input. `field()` names what was
/// wrong — a flag ("--intervals"), a config member ("l2.sets"), a profile —
/// so batch reports and CLI messages can point at the offending knob; the
/// message already embeds it.
class ConfigError : public Error {
 public:
  ConfigError(std::string field, const std::string& message)
      : Error(message), field_(std::move(field)) {}

  const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

/// A run stopped by its cancellation token at an interval boundary — either
/// its deadline expired (a timed-out batch arm) or it was cancelled
/// explicitly (fail-fast sibling shutdown).
class CancelledError : public Error {
 public:
  CancelledError(const std::string& message, bool deadline_expired)
      : Error(message), deadline_expired_(deadline_expired) {}

  /// True when the stop was a deadline expiry rather than an explicit
  /// cancel; the BatchRunner maps this to ArmStatus::kTimedOut.
  bool deadline_expired() const noexcept { return deadline_expired_; }

 private:
  bool deadline_expired_;
};

}  // namespace capart
