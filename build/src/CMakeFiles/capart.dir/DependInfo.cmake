
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/capart.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/capart.dir/common/rng.cpp.o.d"
  "/root/repo/src/core/cpi_proportional_policy.cpp" "src/CMakeFiles/capart.dir/core/cpi_proportional_policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/cpi_proportional_policy.cpp.o.d"
  "/root/repo/src/core/equal_policy.cpp" "src/CMakeFiles/capart.dir/core/equal_policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/equal_policy.cpp.o.d"
  "/root/repo/src/core/fair_slowdown_policy.cpp" "src/CMakeFiles/capart.dir/core/fair_slowdown_policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/fair_slowdown_policy.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/CMakeFiles/capart.dir/core/hierarchical.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/hierarchical.cpp.o.d"
  "/root/repo/src/core/model_based_policy.cpp" "src/CMakeFiles/capart.dir/core/model_based_policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/model_based_policy.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/capart.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/runtime_model.cpp" "src/CMakeFiles/capart.dir/core/runtime_model.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/runtime_model.cpp.o.d"
  "/root/repo/src/core/runtime_system.cpp" "src/CMakeFiles/capart.dir/core/runtime_system.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/runtime_system.cpp.o.d"
  "/root/repo/src/core/throughput_policy.cpp" "src/CMakeFiles/capart.dir/core/throughput_policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/throughput_policy.cpp.o.d"
  "/root/repo/src/core/time_shared_policy.cpp" "src/CMakeFiles/capart.dir/core/time_shared_policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/time_shared_policy.cpp.o.d"
  "/root/repo/src/core/umon_policy.cpp" "src/CMakeFiles/capart.dir/core/umon_policy.cpp.o" "gcc" "src/CMakeFiles/capart.dir/core/umon_policy.cpp.o.d"
  "/root/repo/src/cpu/perf_counters.cpp" "src/CMakeFiles/capart.dir/cpu/perf_counters.cpp.o" "gcc" "src/CMakeFiles/capart.dir/cpu/perf_counters.cpp.o.d"
  "/root/repo/src/math/apportion.cpp" "src/CMakeFiles/capart.dir/math/apportion.cpp.o" "gcc" "src/CMakeFiles/capart.dir/math/apportion.cpp.o.d"
  "/root/repo/src/math/spline.cpp" "src/CMakeFiles/capart.dir/math/spline.cpp.o" "gcc" "src/CMakeFiles/capart.dir/math/spline.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/CMakeFiles/capart.dir/math/stats.cpp.o" "gcc" "src/CMakeFiles/capart.dir/math/stats.cpp.o.d"
  "/root/repo/src/mem/cache_stats.cpp" "src/CMakeFiles/capart.dir/mem/cache_stats.cpp.o" "gcc" "src/CMakeFiles/capart.dir/mem/cache_stats.cpp.o.d"
  "/root/repo/src/mem/l2_organization.cpp" "src/CMakeFiles/capart.dir/mem/l2_organization.cpp.o" "gcc" "src/CMakeFiles/capart.dir/mem/l2_organization.cpp.o.d"
  "/root/repo/src/mem/partitioned_cache.cpp" "src/CMakeFiles/capart.dir/mem/partitioned_cache.cpp.o" "gcc" "src/CMakeFiles/capart.dir/mem/partitioned_cache.cpp.o.d"
  "/root/repo/src/mem/set_assoc_cache.cpp" "src/CMakeFiles/capart.dir/mem/set_assoc_cache.cpp.o" "gcc" "src/CMakeFiles/capart.dir/mem/set_assoc_cache.cpp.o.d"
  "/root/repo/src/mem/set_partitioned_cache.cpp" "src/CMakeFiles/capart.dir/mem/set_partitioned_cache.cpp.o" "gcc" "src/CMakeFiles/capart.dir/mem/set_partitioned_cache.cpp.o.d"
  "/root/repo/src/mem/utility_monitor.cpp" "src/CMakeFiles/capart.dir/mem/utility_monitor.cpp.o" "gcc" "src/CMakeFiles/capart.dir/mem/utility_monitor.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "src/CMakeFiles/capart.dir/report/csv.cpp.o" "gcc" "src/CMakeFiles/capart.dir/report/csv.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/capart.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/capart.dir/report/table.cpp.o.d"
  "/root/repo/src/sim/cmp_system.cpp" "src/CMakeFiles/capart.dir/sim/cmp_system.cpp.o" "gcc" "src/CMakeFiles/capart.dir/sim/cmp_system.cpp.o.d"
  "/root/repo/src/sim/coschedule.cpp" "src/CMakeFiles/capart.dir/sim/coschedule.cpp.o" "gcc" "src/CMakeFiles/capart.dir/sim/coschedule.cpp.o.d"
  "/root/repo/src/sim/driver.cpp" "src/CMakeFiles/capart.dir/sim/driver.cpp.o" "gcc" "src/CMakeFiles/capart.dir/sim/driver.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/capart.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/capart.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/interval.cpp" "src/CMakeFiles/capart.dir/sim/interval.cpp.o" "gcc" "src/CMakeFiles/capart.dir/sim/interval.cpp.o.d"
  "/root/repo/src/sim/program.cpp" "src/CMakeFiles/capart.dir/sim/program.cpp.o" "gcc" "src/CMakeFiles/capart.dir/sim/program.cpp.o.d"
  "/root/repo/src/trace/benchmarks.cpp" "src/CMakeFiles/capart.dir/trace/benchmarks.cpp.o" "gcc" "src/CMakeFiles/capart.dir/trace/benchmarks.cpp.o.d"
  "/root/repo/src/trace/phase.cpp" "src/CMakeFiles/capart.dir/trace/phase.cpp.o" "gcc" "src/CMakeFiles/capart.dir/trace/phase.cpp.o.d"
  "/root/repo/src/trace/stack_dist_generator.cpp" "src/CMakeFiles/capart.dir/trace/stack_dist_generator.cpp.o" "gcc" "src/CMakeFiles/capart.dir/trace/stack_dist_generator.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/capart.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/capart.dir/trace/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
