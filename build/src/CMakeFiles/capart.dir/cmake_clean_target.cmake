file(REMOVE_RECURSE
  "libcapart.a"
)
