# Empty compiler generated dependencies file for capart.
# This may be replaced when dependencies are built.
