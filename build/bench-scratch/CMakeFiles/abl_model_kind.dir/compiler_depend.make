# Empty compiler generated dependencies file for abl_model_kind.
# This may be replaced when dependencies are built.
