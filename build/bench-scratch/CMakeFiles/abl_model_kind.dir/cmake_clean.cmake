file(REMOVE_RECURSE
  "../bench/abl_model_kind"
  "../bench/abl_model_kind.pdb"
  "CMakeFiles/abl_model_kind.dir/abl_model_kind.cpp.o"
  "CMakeFiles/abl_model_kind.dir/abl_model_kind.cpp.o.d"
  "CMakeFiles/abl_model_kind.dir/bench_common.cpp.o"
  "CMakeFiles/abl_model_kind.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_model_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
