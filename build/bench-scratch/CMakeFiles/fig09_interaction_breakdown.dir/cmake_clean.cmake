file(REMOVE_RECURSE
  "../bench/fig09_interaction_breakdown"
  "../bench/fig09_interaction_breakdown.pdb"
  "CMakeFiles/fig09_interaction_breakdown.dir/bench_common.cpp.o"
  "CMakeFiles/fig09_interaction_breakdown.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig09_interaction_breakdown.dir/fig09_interaction_breakdown.cpp.o"
  "CMakeFiles/fig09_interaction_breakdown.dir/fig09_interaction_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_interaction_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
