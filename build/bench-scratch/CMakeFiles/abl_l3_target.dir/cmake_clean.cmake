file(REMOVE_RECURSE
  "../bench/abl_l3_target"
  "../bench/abl_l3_target.pdb"
  "CMakeFiles/abl_l3_target.dir/abl_l3_target.cpp.o"
  "CMakeFiles/abl_l3_target.dir/abl_l3_target.cpp.o.d"
  "CMakeFiles/abl_l3_target.dir/bench_common.cpp.o"
  "CMakeFiles/abl_l3_target.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_l3_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
