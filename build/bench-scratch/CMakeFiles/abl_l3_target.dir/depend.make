# Empty dependencies file for abl_l3_target.
# This may be replaced when dependencies are built.
