# Empty dependencies file for fig18_cg_snapshot.
# This may be replaced when dependencies are built.
