file(REMOVE_RECURSE
  "../bench/fig18_cg_snapshot"
  "../bench/fig18_cg_snapshot.pdb"
  "CMakeFiles/fig18_cg_snapshot.dir/bench_common.cpp.o"
  "CMakeFiles/fig18_cg_snapshot.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig18_cg_snapshot.dir/fig18_cg_snapshot.cpp.o"
  "CMakeFiles/fig18_cg_snapshot.dir/fig18_cg_snapshot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cg_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
