file(REMOVE_RECURSE
  "../bench/fig06_swim_phases"
  "../bench/fig06_swim_phases.pdb"
  "CMakeFiles/fig06_swim_phases.dir/bench_common.cpp.o"
  "CMakeFiles/fig06_swim_phases.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig06_swim_phases.dir/fig06_swim_phases.cpp.o"
  "CMakeFiles/fig06_swim_phases.dir/fig06_swim_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_swim_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
