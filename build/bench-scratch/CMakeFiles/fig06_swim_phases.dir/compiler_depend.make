# Empty compiler generated dependencies file for fig06_swim_phases.
# This may be replaced when dependencies are built.
