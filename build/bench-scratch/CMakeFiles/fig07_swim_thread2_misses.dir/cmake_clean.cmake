file(REMOVE_RECURSE
  "../bench/fig07_swim_thread2_misses"
  "../bench/fig07_swim_thread2_misses.pdb"
  "CMakeFiles/fig07_swim_thread2_misses.dir/bench_common.cpp.o"
  "CMakeFiles/fig07_swim_thread2_misses.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig07_swim_thread2_misses.dir/fig07_swim_thread2_misses.cpp.o"
  "CMakeFiles/fig07_swim_thread2_misses.dir/fig07_swim_thread2_misses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_swim_thread2_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
