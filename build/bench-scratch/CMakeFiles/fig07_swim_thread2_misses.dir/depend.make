# Empty dependencies file for fig07_swim_thread2_misses.
# This may be replaced when dependencies are built.
