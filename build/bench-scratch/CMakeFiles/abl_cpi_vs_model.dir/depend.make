# Empty dependencies file for abl_cpi_vs_model.
# This may be replaced when dependencies are built.
