file(REMOVE_RECURSE
  "../bench/abl_cpi_vs_model"
  "../bench/abl_cpi_vs_model.pdb"
  "CMakeFiles/abl_cpi_vs_model.dir/abl_cpi_vs_model.cpp.o"
  "CMakeFiles/abl_cpi_vs_model.dir/abl_cpi_vs_model.cpp.o.d"
  "CMakeFiles/abl_cpi_vs_model.dir/bench_common.cpp.o"
  "CMakeFiles/abl_cpi_vs_model.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cpi_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
