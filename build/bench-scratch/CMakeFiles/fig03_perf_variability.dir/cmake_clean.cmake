file(REMOVE_RECURSE
  "../bench/fig03_perf_variability"
  "../bench/fig03_perf_variability.pdb"
  "CMakeFiles/fig03_perf_variability.dir/bench_common.cpp.o"
  "CMakeFiles/fig03_perf_variability.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig03_perf_variability.dir/fig03_perf_variability.cpp.o"
  "CMakeFiles/fig03_perf_variability.dir/fig03_perf_variability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_perf_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
