# Empty compiler generated dependencies file for fig03_perf_variability.
# This may be replaced when dependencies are built.
