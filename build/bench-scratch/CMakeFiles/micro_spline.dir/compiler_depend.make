# Empty compiler generated dependencies file for micro_spline.
# This may be replaced when dependencies are built.
