file(REMOVE_RECURSE
  "../bench/micro_spline"
  "../bench/micro_spline.pdb"
  "CMakeFiles/micro_spline.dir/micro_spline.cpp.o"
  "CMakeFiles/micro_spline.dir/micro_spline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
