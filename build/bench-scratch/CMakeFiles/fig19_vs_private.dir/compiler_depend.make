# Empty compiler generated dependencies file for fig19_vs_private.
# This may be replaced when dependencies are built.
