file(REMOVE_RECURSE
  "../bench/fig19_vs_private"
  "../bench/fig19_vs_private.pdb"
  "CMakeFiles/fig19_vs_private.dir/bench_common.cpp.o"
  "CMakeFiles/fig19_vs_private.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig19_vs_private.dir/fig19_vs_private.cpp.o"
  "CMakeFiles/fig19_vs_private.dir/fig19_vs_private.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_vs_private.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
