# Empty compiler generated dependencies file for fig08_interthread_interaction.
# This may be replaced when dependencies are built.
