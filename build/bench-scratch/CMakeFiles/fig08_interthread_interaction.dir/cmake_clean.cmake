file(REMOVE_RECURSE
  "../bench/fig08_interthread_interaction"
  "../bench/fig08_interthread_interaction.pdb"
  "CMakeFiles/fig08_interthread_interaction.dir/bench_common.cpp.o"
  "CMakeFiles/fig08_interthread_interaction.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig08_interthread_interaction.dir/fig08_interthread_interaction.cpp.o"
  "CMakeFiles/fig08_interthread_interaction.dir/fig08_interthread_interaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_interthread_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
