file(REMOVE_RECURSE
  "../bench/fig10_cache_sensitivity"
  "../bench/fig10_cache_sensitivity.pdb"
  "CMakeFiles/fig10_cache_sensitivity.dir/bench_common.cpp.o"
  "CMakeFiles/fig10_cache_sensitivity.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig10_cache_sensitivity.dir/fig10_cache_sensitivity.cpp.o"
  "CMakeFiles/fig10_cache_sensitivity.dir/fig10_cache_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cache_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
