# Empty dependencies file for fig10_cache_sensitivity.
# This may be replaced when dependencies are built.
