file(REMOVE_RECURSE
  "../bench/fig22_eight_core"
  "../bench/fig22_eight_core.pdb"
  "CMakeFiles/fig22_eight_core.dir/bench_common.cpp.o"
  "CMakeFiles/fig22_eight_core.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig22_eight_core.dir/fig22_eight_core.cpp.o"
  "CMakeFiles/fig22_eight_core.dir/fig22_eight_core.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_eight_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
