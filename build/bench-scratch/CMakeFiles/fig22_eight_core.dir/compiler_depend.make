# Empty compiler generated dependencies file for fig22_eight_core.
# This may be replaced when dependencies are built.
