file(REMOVE_RECURSE
  "../bench/abl_overhead"
  "../bench/abl_overhead.pdb"
  "CMakeFiles/abl_overhead.dir/abl_overhead.cpp.o"
  "CMakeFiles/abl_overhead.dir/abl_overhead.cpp.o.d"
  "CMakeFiles/abl_overhead.dir/bench_common.cpp.o"
  "CMakeFiles/abl_overhead.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
