# Empty compiler generated dependencies file for abl_mechanism.
# This may be replaced when dependencies are built.
