file(REMOVE_RECURSE
  "../bench/abl_mechanism"
  "../bench/abl_mechanism.pdb"
  "CMakeFiles/abl_mechanism.dir/abl_mechanism.cpp.o"
  "CMakeFiles/abl_mechanism.dir/abl_mechanism.cpp.o.d"
  "CMakeFiles/abl_mechanism.dir/bench_common.cpp.o"
  "CMakeFiles/abl_mechanism.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
