# Empty dependencies file for abl_interval_length.
# This may be replaced when dependencies are built.
