file(REMOVE_RECURSE
  "../bench/abl_interval_length"
  "../bench/abl_interval_length.pdb"
  "CMakeFiles/abl_interval_length.dir/abl_interval_length.cpp.o"
  "CMakeFiles/abl_interval_length.dir/abl_interval_length.cpp.o.d"
  "CMakeFiles/abl_interval_length.dir/bench_common.cpp.o"
  "CMakeFiles/abl_interval_length.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interval_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
