# Empty dependencies file for abl_bandwidth.
# This may be replaced when dependencies are built.
