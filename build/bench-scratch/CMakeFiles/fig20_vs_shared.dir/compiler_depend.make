# Empty compiler generated dependencies file for fig20_vs_shared.
# This may be replaced when dependencies are built.
