file(REMOVE_RECURSE
  "../bench/fig20_vs_shared"
  "../bench/fig20_vs_shared.pdb"
  "CMakeFiles/fig20_vs_shared.dir/bench_common.cpp.o"
  "CMakeFiles/fig20_vs_shared.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig20_vs_shared.dir/fig20_vs_shared.cpp.o"
  "CMakeFiles/fig20_vs_shared.dir/fig20_vs_shared.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_vs_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
