file(REMOVE_RECURSE
  "../bench/fig21_vs_throughput"
  "../bench/fig21_vs_throughput.pdb"
  "CMakeFiles/fig21_vs_throughput.dir/bench_common.cpp.o"
  "CMakeFiles/fig21_vs_throughput.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig21_vs_throughput.dir/fig21_vs_throughput.cpp.o"
  "CMakeFiles/fig21_vs_throughput.dir/fig21_vs_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_vs_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
