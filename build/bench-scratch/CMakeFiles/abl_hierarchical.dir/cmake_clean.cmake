file(REMOVE_RECURSE
  "../bench/abl_hierarchical"
  "../bench/abl_hierarchical.pdb"
  "CMakeFiles/abl_hierarchical.dir/abl_hierarchical.cpp.o"
  "CMakeFiles/abl_hierarchical.dir/abl_hierarchical.cpp.o.d"
  "CMakeFiles/abl_hierarchical.dir/bench_common.cpp.o"
  "CMakeFiles/abl_hierarchical.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
