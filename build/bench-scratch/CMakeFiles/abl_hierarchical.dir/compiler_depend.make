# Empty compiler generated dependencies file for abl_hierarchical.
# This may be replaced when dependencies are built.
