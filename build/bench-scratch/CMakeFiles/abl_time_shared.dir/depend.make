# Empty dependencies file for abl_time_shared.
# This may be replaced when dependencies are built.
