file(REMOVE_RECURSE
  "../bench/abl_time_shared"
  "../bench/abl_time_shared.pdb"
  "CMakeFiles/abl_time_shared.dir/abl_time_shared.cpp.o"
  "CMakeFiles/abl_time_shared.dir/abl_time_shared.cpp.o.d"
  "CMakeFiles/abl_time_shared.dir/bench_common.cpp.o"
  "CMakeFiles/abl_time_shared.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_time_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
