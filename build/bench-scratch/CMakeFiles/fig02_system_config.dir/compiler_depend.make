# Empty compiler generated dependencies file for fig02_system_config.
# This may be replaced when dependencies are built.
