file(REMOVE_RECURSE
  "../bench/fig02_system_config"
  "../bench/fig02_system_config.pdb"
  "CMakeFiles/fig02_system_config.dir/bench_common.cpp.o"
  "CMakeFiles/fig02_system_config.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig02_system_config.dir/fig02_system_config.cpp.o"
  "CMakeFiles/fig02_system_config.dir/fig02_system_config.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_system_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
