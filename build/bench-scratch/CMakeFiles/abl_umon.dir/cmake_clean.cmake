file(REMOVE_RECURSE
  "../bench/abl_umon"
  "../bench/abl_umon.pdb"
  "CMakeFiles/abl_umon.dir/abl_umon.cpp.o"
  "CMakeFiles/abl_umon.dir/abl_umon.cpp.o.d"
  "CMakeFiles/abl_umon.dir/bench_common.cpp.o"
  "CMakeFiles/abl_umon.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_umon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
