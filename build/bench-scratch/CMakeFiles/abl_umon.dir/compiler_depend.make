# Empty compiler generated dependencies file for abl_umon.
# This may be replaced when dependencies are built.
