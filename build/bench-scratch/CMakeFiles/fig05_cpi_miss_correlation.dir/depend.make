# Empty dependencies file for fig05_cpi_miss_correlation.
# This may be replaced when dependencies are built.
