file(REMOVE_RECURSE
  "../bench/fig05_cpi_miss_correlation"
  "../bench/fig05_cpi_miss_correlation.pdb"
  "CMakeFiles/fig05_cpi_miss_correlation.dir/bench_common.cpp.o"
  "CMakeFiles/fig05_cpi_miss_correlation.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig05_cpi_miss_correlation.dir/fig05_cpi_miss_correlation.cpp.o"
  "CMakeFiles/fig05_cpi_miss_correlation.dir/fig05_cpi_miss_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cpi_miss_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
