# Empty dependencies file for abl_reconfigure.
# This may be replaced when dependencies are built.
