file(REMOVE_RECURSE
  "../bench/abl_reconfigure"
  "../bench/abl_reconfigure.pdb"
  "CMakeFiles/abl_reconfigure.dir/abl_reconfigure.cpp.o"
  "CMakeFiles/abl_reconfigure.dir/abl_reconfigure.cpp.o.d"
  "CMakeFiles/abl_reconfigure.dir/bench_common.cpp.o"
  "CMakeFiles/abl_reconfigure.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reconfigure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
