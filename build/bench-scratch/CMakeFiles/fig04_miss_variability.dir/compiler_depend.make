# Empty compiler generated dependencies file for fig04_miss_variability.
# This may be replaced when dependencies are built.
