file(REMOVE_RECURSE
  "../bench/fig04_miss_variability"
  "../bench/fig04_miss_variability.pdb"
  "CMakeFiles/fig04_miss_variability.dir/bench_common.cpp.o"
  "CMakeFiles/fig04_miss_variability.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig04_miss_variability.dir/fig04_miss_variability.cpp.o"
  "CMakeFiles/fig04_miss_variability.dir/fig04_miss_variability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_miss_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
