# Empty dependencies file for fig15_runtime_models.
# This may be replaced when dependencies are built.
