file(REMOVE_RECURSE
  "../bench/fig15_runtime_models"
  "../bench/fig15_runtime_models.pdb"
  "CMakeFiles/fig15_runtime_models.dir/bench_common.cpp.o"
  "CMakeFiles/fig15_runtime_models.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig15_runtime_models.dir/fig15_runtime_models.cpp.o"
  "CMakeFiles/fig15_runtime_models.dir/fig15_runtime_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_runtime_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
