# Empty dependencies file for abl_cache_size.
# This may be replaced when dependencies are built.
