file(REMOVE_RECURSE
  "../bench/abl_cache_size"
  "../bench/abl_cache_size.pdb"
  "CMakeFiles/abl_cache_size.dir/abl_cache_size.cpp.o"
  "CMakeFiles/abl_cache_size.dir/abl_cache_size.cpp.o.d"
  "CMakeFiles/abl_cache_size.dir/bench_common.cpp.o"
  "CMakeFiles/abl_cache_size.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
