# Empty dependencies file for example_policy_comparison.
# This may be replaced when dependencies are built.
