file(REMOVE_RECURSE
  "CMakeFiles/example_policy_comparison.dir/policy_comparison.cpp.o"
  "CMakeFiles/example_policy_comparison.dir/policy_comparison.cpp.o.d"
  "example_policy_comparison"
  "example_policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
