# Empty dependencies file for example_phase_adaptivity.
# This may be replaced when dependencies are built.
