file(REMOVE_RECURSE
  "CMakeFiles/example_phase_adaptivity.dir/phase_adaptivity.cpp.o"
  "CMakeFiles/example_phase_adaptivity.dir/phase_adaptivity.cpp.o.d"
  "example_phase_adaptivity"
  "example_phase_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_phase_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
