# Empty compiler generated dependencies file for example_hierarchical_multiapp.
# This may be replaced when dependencies are built.
