file(REMOVE_RECURSE
  "CMakeFiles/example_hierarchical_multiapp.dir/hierarchical_multiapp.cpp.o"
  "CMakeFiles/example_hierarchical_multiapp.dir/hierarchical_multiapp.cpp.o.d"
  "example_hierarchical_multiapp"
  "example_hierarchical_multiapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hierarchical_multiapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
