
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apportion.cpp" "tests/CMakeFiles/capart_tests.dir/test_apportion.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_apportion.cpp.o.d"
  "/root/repo/tests/test_benchmarks.cpp" "tests/CMakeFiles/capart_tests.dir/test_benchmarks.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_benchmarks.cpp.o.d"
  "/root/repo/tests/test_cache_stats.cpp" "tests/CMakeFiles/capart_tests.dir/test_cache_stats.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_cache_stats.cpp.o.d"
  "/root/repo/tests/test_cmp_system.cpp" "tests/CMakeFiles/capart_tests.dir/test_cmp_system.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_cmp_system.cpp.o.d"
  "/root/repo/tests/test_coschedule.cpp" "tests/CMakeFiles/capart_tests.dir/test_coschedule.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_coschedule.cpp.o.d"
  "/root/repo/tests/test_driver.cpp" "tests/CMakeFiles/capart_tests.dir/test_driver.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_driver.cpp.o.d"
  "/root/repo/tests/test_experiment_integration.cpp" "tests/CMakeFiles/capart_tests.dir/test_experiment_integration.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_experiment_integration.cpp.o.d"
  "/root/repo/tests/test_hierarchical.cpp" "tests/CMakeFiles/capart_tests.dir/test_hierarchical.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_hierarchical.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "tests/CMakeFiles/capart_tests.dir/test_interval.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_interval.cpp.o.d"
  "/root/repo/tests/test_l2_organization.cpp" "tests/CMakeFiles/capart_tests.dir/test_l2_organization.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_l2_organization.cpp.o.d"
  "/root/repo/tests/test_model_based_policy.cpp" "tests/CMakeFiles/capart_tests.dir/test_model_based_policy.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_model_based_policy.cpp.o.d"
  "/root/repo/tests/test_partitioned_cache.cpp" "tests/CMakeFiles/capart_tests.dir/test_partitioned_cache.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_partitioned_cache.cpp.o.d"
  "/root/repo/tests/test_perf_counters.cpp" "tests/CMakeFiles/capart_tests.dir/test_perf_counters.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_perf_counters.cpp.o.d"
  "/root/repo/tests/test_phase.cpp" "tests/CMakeFiles/capart_tests.dir/test_phase.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_phase.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/capart_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_program.cpp" "tests/CMakeFiles/capart_tests.dir/test_program.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_program.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/capart_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/capart_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/capart_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runtime_system.cpp" "tests/CMakeFiles/capart_tests.dir/test_runtime_system.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_runtime_system.cpp.o.d"
  "/root/repo/tests/test_set_assoc_cache.cpp" "tests/CMakeFiles/capart_tests.dir/test_set_assoc_cache.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_set_assoc_cache.cpp.o.d"
  "/root/repo/tests/test_set_partitioned_cache.cpp" "tests/CMakeFiles/capart_tests.dir/test_set_partitioned_cache.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_set_partitioned_cache.cpp.o.d"
  "/root/repo/tests/test_spline.cpp" "tests/CMakeFiles/capart_tests.dir/test_spline.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_spline.cpp.o.d"
  "/root/repo/tests/test_stack_dist_generator.cpp" "tests/CMakeFiles/capart_tests.dir/test_stack_dist_generator.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_stack_dist_generator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/capart_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_timing_model.cpp" "tests/CMakeFiles/capart_tests.dir/test_timing_model.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_timing_model.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/capart_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_umon_policy.cpp" "tests/CMakeFiles/capart_tests.dir/test_umon_policy.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_umon_policy.cpp.o.d"
  "/root/repo/tests/test_utility_monitor.cpp" "tests/CMakeFiles/capart_tests.dir/test_utility_monitor.cpp.o" "gcc" "tests/CMakeFiles/capart_tests.dir/test_utility_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
