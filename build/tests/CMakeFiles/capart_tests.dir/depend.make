# Empty dependencies file for capart_tests.
# This may be replaced when dependencies are built.
