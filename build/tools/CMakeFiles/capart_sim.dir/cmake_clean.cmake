file(REMOVE_RECURSE
  "CMakeFiles/capart_sim.dir/capart_sim.cpp.o"
  "CMakeFiles/capart_sim.dir/capart_sim.cpp.o.d"
  "capart_sim"
  "capart_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
