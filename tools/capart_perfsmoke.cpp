// Perf-regression smoke for the simulator hot path (the --l2-index axis).
//
// Runs the fig19-21 arm union (every benchmark profile x {model,
// static_equal, shared, throughput}) once per tag-lookup mechanism — scan
// and hash — on the same seed, then:
//
//   * asserts bit-identity: per-arm simulated cycles, instructions, L2
//     accesses/hits/misses must match exactly between the two mechanisms
//     (the index only changes how the resident way is found, never what the
//     cache does — src/mem/block_index.hpp);
//   * emits BENCH_hotpath.json with per-arm wall seconds, per-kind
//     accesses/sec, and the headline speedup_hash_over_scan;
//   * with --check=BASELINE.json, compares the measured speedup *ratio*
//     against the committed baseline and fails on a >tolerance regression.
//     The ratio (not absolute accesses/sec) is compared so the gate holds
//     across machines of different speeds.
//
// CI runs this in Release at --jobs=1 (tools/run via .github/workflows);
// regenerate the baseline with:
//   build/tools/capart_perfsmoke --out=bench/BENCH_hotpath_baseline.json
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "src/mem/block_index.hpp"
#include "src/obs/json.hpp"
#include "src/sim/batch.hpp"
#include "src/trace/benchmarks.hpp"

namespace {

using namespace capart;

struct Options {
  std::uint32_t intervals = 40;
  Instructions interval_instructions = 0;  // 0 -> bench default
  ThreadId threads = 4;
  std::uint64_t seed = 42;
  unsigned jobs = 1;  // serial by default: wall time is the measurement
  std::string out = "BENCH_hotpath.json";
  std::string check;      // baseline JSON to gate against (empty = no gate)
  double tolerance = 0.25;  // allowed fractional speedup regression
};

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: capart_perfsmoke [flags]\n"
      "  --intervals=N       execution intervals per arm (default 40)\n"
      "  --interval-instr=N  instructions per interval (default bench)\n"
      "  --threads=N         cores (default 4)\n"
      "  --seed=N            workload seed (default 42)\n"
      "  --jobs=N            concurrent arms (default 1; keep 1 for timing)\n"
      "  --out=PATH          result JSON (default BENCH_hotpath.json)\n"
      "  --check=PATH        baseline JSON; fail on speedup regression\n"
      "  --tolerance=X       allowed fractional regression (default 0.25)\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) usage_and_exit();
    const std::string_view key = arg.substr(0, eq);
    const std::string value{arg.substr(eq + 1)};
    if (key == "--intervals") {
      opt.intervals = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--interval-instr") {
      opt.interval_instructions = std::stoull(value);
    } else if (key == "--threads") {
      opt.threads = static_cast<ThreadId>(std::stoul(value));
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    } else if (key == "--jobs") {
      opt.jobs = static_cast<unsigned>(std::stoul(value));
    } else if (key == "--out") {
      opt.out = value;
    } else if (key == "--check") {
      opt.check = value;
    } else if (key == "--tolerance") {
      opt.tolerance = std::stod(value);
    } else {
      std::fprintf(stderr, "unknown flag: %.*s\n",
                   static_cast<int>(key.size()), key.data());
      usage_and_exit();
    }
  }
  return opt;
}

/// One mechanism's measurement: the full fig19-21 arm union under `kind`.
struct KindRun {
  mem::IndexKind kind;
  sim::BatchResult batch;
  double serial_seconds = 0.0;
  std::uint64_t accesses = 0;
};

KindRun run_kind(const Options& opt, mem::IndexKind kind) {
  bench::BenchOptions bopt;
  bopt.intervals = opt.intervals;
  bopt.interval_instructions = opt.interval_instructions;
  bopt.threads = opt.threads;
  bopt.seed = opt.seed;
  bopt.jobs = opt.jobs;
  bopt.l2_index = kind;
  const std::vector<std::string> arms = {"model", "static_equal", "shared",
                                         "throughput"};
  const sim::ExperimentSpec spec = bench::profile_sweep(
      bopt, trace::benchmark_names(), arms,
      std::string("hotpath_") + std::string(mem::to_string(kind)));

  KindRun run{.kind = kind,
              .batch = sim::BatchRunner(opt.jobs).run(spec)};
  for (const sim::ArmOutcome& arm : run.batch.arms) {
    if (!arm.ok()) {
      std::fprintf(stderr, "arm %s failed under %s: %s\n", arm.name.c_str(),
                   std::string(mem::to_string(kind)).c_str(),
                   arm.error.c_str());
      std::exit(1);
    }
    run.serial_seconds += arm.wall_seconds;
    run.accesses += arm.result.l2_stats.total().accesses;
  }
  return run;
}

/// Exact-equality gate: the lookup mechanism must not change simulation
/// results at all. Any drift here is a correctness bug, not a perf matter.
bool bit_identical(const KindRun& scan, const KindRun& hash) {
  bool ok = true;
  for (std::size_t i = 0; i < scan.batch.arms.size(); ++i) {
    const sim::ArmOutcome& a = scan.batch.arms[i];
    const sim::ArmOutcome& b = hash.batch.arms[i];
    const mem::ThreadCacheCounters ta = a.result.l2_stats.total();
    const mem::ThreadCacheCounters tb = b.result.l2_stats.total();
    if (a.name != b.name ||
        a.result.outcome.total_cycles != b.result.outcome.total_cycles ||
        a.result.outcome.instructions_retired !=
            b.result.outcome.instructions_retired ||
        ta.accesses != tb.accesses || ta.hits != tb.hits ||
        ta.misses != tb.misses || ta.writebacks != tb.writebacks) {
      std::fprintf(stderr,
                   "BIT-IDENTITY VIOLATION at arm %s: scan/hash disagree "
                   "(cycles %llu vs %llu, accesses %llu vs %llu)\n",
                   a.name.c_str(),
                   static_cast<unsigned long long>(
                       a.result.outcome.total_cycles),
                   static_cast<unsigned long long>(
                       b.result.outcome.total_cycles),
                   static_cast<unsigned long long>(ta.accesses),
                   static_cast<unsigned long long>(tb.accesses));
      ok = false;
    }
  }
  return ok;
}

void write_kind(obs::JsonWriter& w, const KindRun& run) {
  w.begin_object()
      .key("index")
      .value(mem::to_string(run.kind))
      .key("serial_seconds")
      .value(run.serial_seconds)
      .key("wall_seconds")
      .value(run.batch.wall_seconds)
      .key("accesses")
      .value(run.accesses)
      .key("accesses_per_sec")
      .value(run.serial_seconds > 0.0
                 ? static_cast<double>(run.accesses) / run.serial_seconds
                 : 0.0)
      .key("arms")
      .begin_array();
  for (const sim::ArmOutcome& arm : run.batch.arms) {
    w.begin_object()
        .key("name")
        .value(arm.name)
        .key("wall_seconds")
        .value(arm.wall_seconds)
        .key("accesses")
        .value(arm.result.l2_stats.total().accesses)
        .end_object();
  }
  w.end_array().end_object();
}

/// Reads `path`'s speedup_hash_over_scan; exits on parse failure.
double baseline_speedup(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto doc = obs::parse_json(buf.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "baseline %s is not valid JSON: %s\n", path.c_str(),
                 error.c_str());
    std::exit(1);
  }
  const obs::JsonValue* speedup = doc->find("speedup_hash_over_scan");
  if (speedup == nullptr || !speedup->is_number()) {
    std::fprintf(stderr, "baseline %s lacks speedup_hash_over_scan\n",
                 path.c_str());
    std::exit(1);
  }
  return speedup->as_double();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  std::printf(
      "capart_perfsmoke: fig19-21 arm union, scan vs hash tag lookup\n"
      "  intervals=%u threads=%u seed=%llu jobs=%u\n",
      opt.intervals, static_cast<unsigned>(opt.threads),
      static_cast<unsigned long long>(opt.seed), opt.jobs);

  const KindRun scan = run_kind(opt, mem::IndexKind::kScan);
  const KindRun hash = run_kind(opt, mem::IndexKind::kHash);
  if (!bit_identical(scan, hash)) return 1;

  const double speedup = hash.serial_seconds > 0.0
                             ? scan.serial_seconds / hash.serial_seconds
                             : 0.0;
  std::printf("  scan: %.2fs serial (%.3g accesses/s)\n", scan.serial_seconds,
              static_cast<double>(scan.accesses) / scan.serial_seconds);
  std::printf("  hash: %.2fs serial (%.3g accesses/s)\n", hash.serial_seconds,
              static_cast<double>(hash.accesses) / hash.serial_seconds);
  std::printf("  speedup (hash over scan): %.2fx\n", speedup);

  obs::JsonWriter w;
  w.begin_object()
      .key("bench")
      .value("hotpath")
      .key("intervals")
      .value(opt.intervals)
      .key("threads")
      .value(static_cast<std::uint32_t>(opt.threads))
      .key("seed")
      .value(opt.seed)
      .key("jobs")
      .value(opt.jobs)
      .key("bit_identical")
      .value(true)
      .key("speedup_hash_over_scan")
      .value(speedup)
      .key("kinds")
      .begin_array();
  write_kind(w, scan);
  write_kind(w, hash);
  w.end_array().end_object();

  std::ofstream out(opt.out, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  out << w.str() << '\n';
  out.close();
  std::printf("  wrote %s\n", opt.out.c_str());

  if (!opt.check.empty()) {
    const double base = baseline_speedup(opt.check);
    const double floor = base * (1.0 - opt.tolerance);
    std::printf(
        "  baseline speedup %.2fx, tolerance %.0f%% -> floor %.2fx: %s\n",
        base, opt.tolerance * 100.0, floor,
        speedup >= floor ? "ok" : "REGRESSION");
    if (speedup < floor) {
      std::fprintf(stderr,
                   "perf regression: hash-over-scan speedup %.2fx fell below "
                   "%.2fx (baseline %.2fx - %.0f%%)\n",
                   speedup, floor, base, opt.tolerance * 100.0);
      return 1;
    }
  }
  return 0;
}
