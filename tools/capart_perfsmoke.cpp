// Perf-regression smoke for the simulator hot path (the --l2-index axis).
//
// Runs the fig19-21 arm union (every benchmark profile x {model,
// static_equal, shared, throughput}) under both tag-lookup mechanisms — scan
// and hash — on the same seed, then:
//
//   * asserts bit-identity: per-arm simulated cycles, instructions, L2
//     accesses/hits/misses must match exactly between the two mechanisms
//     (the index only changes how the resident way is found, never what the
//     cache does — src/mem/block_index.hpp) AND across repetitions;
//   * de-flakes the timing: each mechanism runs --warmup throwaway passes
//     (page cache, branch predictors, the trace spool's one-time resolve)
//     followed by --reps measured passes, and every reported number and the
//     regression gate use the MEDIAN serial-equivalent time, which is robust
//     against a single noisy-neighbour rep the mean is not;
//   * emits BENCH_hotpath.json with per-rep and median wall seconds,
//     per-kind accesses/sec, and the headline speedup_hash_over_scan;
//   * with --check=BASELINE.json, compares the measured median speedup
//     *ratio* against the committed baseline and fails on a >tolerance
//     regression. The ratio (not absolute accesses/sec) is compared so the
//     gate holds across machines of different speeds; the threshold is
//     --tolerance.
//
// --trace-dir enables the resolved-trace spool (sim/trace_spool.hpp): the
// first pass generates+resolves each profile's streams once and every later
// arm replays them mmap()ed, which is the production fast path and the one
// the committed baseline measures. The resolve stage is timed separately
// (a dedicated spool-acquire pass before measurement, reported as
// resolve_seconds) so the measured reps are pure replay and the JSON splits
// the two stages. --lockstep additionally groups arms sharing a spool
// identity onto one shared decoded trace (sim::BatchPolicy::lockstep);
// simd_backend records which tag-probe backend the binary was built with.
//
// CI runs this in Release at --jobs=1 (tools/run via .github/workflows);
// regenerate the baseline with:
//   build/tools/capart_perfsmoke --trace-dir=/tmp/capart_spool
//       --out=bench/BENCH_hotpath_baseline.json  (one command line)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "src/mem/block_index.hpp"
#include "src/mem/simd.hpp"
#include "src/obs/json.hpp"
#include "src/sim/batch.hpp"
#include "src/sim/trace_spool.hpp"
#include "src/trace/benchmarks.hpp"

namespace {

using namespace capart;

struct Options {
  std::uint32_t intervals = 40;
  Instructions interval_instructions = 0;  // 0 -> bench default
  ThreadId threads = 4;
  std::uint64_t seed = 42;
  unsigned jobs = 1;  // serial by default: wall time is the measurement
  std::uint32_t intra_jobs = 1;
  std::string trace_dir;  // resolved-trace spool directory (empty = off)
  bool lockstep = false;  // multi-arm lockstep replay (needs --trace-dir)
  std::uint32_t reps = 3;    // measured repetitions; the median gates
  std::uint32_t warmup = 1;  // throwaway passes before measuring
  std::string out = "BENCH_hotpath.json";
  std::string check;      // baseline JSON to gate against (empty = no gate)
  double tolerance = 0.25;  // allowed fractional speedup regression
};

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: capart_perfsmoke [flags]\n"
      "  --intervals=N       execution intervals per arm (default 40)\n"
      "  --interval-instr=N  instructions per interval (default bench)\n"
      "  --threads=N         cores (default 4)\n"
      "  --seed=N            workload seed (default 42)\n"
      "  --jobs=N            concurrent arms (default 1; keep 1 for timing)\n"
      "  --intra-jobs=N      workers inside each experiment (default 1)\n"
      "  --trace-dir=DIR     resolved-trace spool directory (default off)\n"
      "  --lockstep=0|1      multi-arm lockstep replay (default 0; needs\n"
      "                      --trace-dir; results bit-identical either way)\n"
      "  --reps=N            measured repetitions; median gates (default 3)\n"
      "  --warmup=N          throwaway passes before measuring (default 1)\n"
      "  --out=PATH          result JSON (default BENCH_hotpath.json)\n"
      "  --check=PATH        baseline JSON; fail on speedup regression\n"
      "  --tolerance=X       allowed fractional regression (default 0.25)\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) usage_and_exit();
    const std::string_view key = arg.substr(0, eq);
    const std::string value{arg.substr(eq + 1)};
    if (key == "--intervals") {
      opt.intervals = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--interval-instr") {
      opt.interval_instructions = std::stoull(value);
    } else if (key == "--threads") {
      opt.threads = static_cast<ThreadId>(std::stoul(value));
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    } else if (key == "--jobs") {
      opt.jobs = static_cast<unsigned>(std::stoul(value));
    } else if (key == "--intra-jobs") {
      opt.intra_jobs = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--trace-dir") {
      opt.trace_dir = value;
    } else if (key == "--lockstep") {
      opt.lockstep = value != "0";
    } else if (key == "--reps") {
      opt.reps = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--warmup") {
      opt.warmup = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--out") {
      opt.out = value;
    } else if (key == "--check") {
      opt.check = value;
    } else if (key == "--tolerance") {
      opt.tolerance = std::stod(value);
    } else {
      std::fprintf(stderr, "unknown flag: %.*s\n",
                   static_cast<int>(key.size()), key.data());
      usage_and_exit();
    }
  }
  if (opt.reps == 0) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    usage_and_exit();
  }
  return opt;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

bench::BenchOptions to_bench_options(const Options& opt) {
  bench::BenchOptions bopt;
  bopt.intervals = opt.intervals;
  bopt.interval_instructions = opt.interval_instructions;
  bopt.threads = opt.threads;
  bopt.seed = opt.seed;
  bopt.jobs = opt.jobs;
  bopt.intra_jobs = opt.intra_jobs;
  bopt.trace_dir = opt.trace_dir;
  return bopt;
}

/// The resolve stage, isolated: acquires every profile's spool entries
/// (generating + resolving whatever is missing) and returns the pass's wall
/// seconds. After this the measured reps below are pure replay, so the
/// JSON's resolve_seconds / replay serial_seconds split attributes the two
/// stages honestly. On a warm spool this is just open+verify cost. Returns
/// 0 when spooling is off (stages are not separable in live-generator mode).
double warm_spool_stage(const Options& opt) {
  if (opt.trace_dir.empty()) return 0.0;
  const bench::BenchOptions bopt = to_bench_options(opt);
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& profile : trace::benchmark_names()) {
    sim::ExperimentConfig cfg = bench::base_config(bopt, profile);
    const Instructions per_thread =
        cfg.interval_instructions * cfg.num_intervals / cfg.num_threads;
    (void)sim::spool_sources(cfg, per_thread);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One mechanism's measurement: the full fig19-21 arm union under `kind`,
/// repeated warmup+reps times. `batch` keeps the first measured rep (the
/// per-arm results; later reps are asserted identical and only timed).
struct KindRun {
  mem::IndexKind kind;
  sim::BatchResult batch;
  std::vector<double> rep_seconds;  // serial-equivalent, measured reps only
  double median_seconds = 0.0;
  std::uint64_t accesses = 0;
};

double serial_seconds_of(const sim::BatchResult& batch,
                         mem::IndexKind kind) {
  double total = 0.0;
  for (const sim::ArmOutcome& arm : batch.arms) {
    if (!arm.ok()) {
      std::fprintf(stderr, "arm %s failed under %s: %s\n", arm.name.c_str(),
                   std::string(mem::to_string(kind)).c_str(),
                   arm.error.c_str());
      std::exit(1);
    }
    total += arm.wall_seconds;
  }
  return total;
}

/// Exact-equality check between two batches of the same spec; `what` labels
/// the axis being compared (index mechanism, repetition) in the message.
bool batches_identical(const sim::BatchResult& a, const sim::BatchResult& b,
                       const char* what) {
  bool ok = true;
  for (std::size_t i = 0; i < a.arms.size(); ++i) {
    const sim::ArmOutcome& x = a.arms[i];
    const sim::ArmOutcome& y = b.arms[i];
    const mem::ThreadCacheCounters tx = x.result.l2_stats.total();
    const mem::ThreadCacheCounters ty = y.result.l2_stats.total();
    if (x.name != y.name ||
        x.result.outcome.total_cycles != y.result.outcome.total_cycles ||
        x.result.outcome.instructions_retired !=
            y.result.outcome.instructions_retired ||
        tx.accesses != ty.accesses || tx.hits != ty.hits ||
        tx.misses != ty.misses || tx.writebacks != ty.writebacks) {
      std::fprintf(
          stderr,
          "BIT-IDENTITY VIOLATION (%s) at arm %s: cycles %llu vs %llu, "
          "accesses %llu vs %llu\n",
          what, x.name.c_str(),
          static_cast<unsigned long long>(x.result.outcome.total_cycles),
          static_cast<unsigned long long>(y.result.outcome.total_cycles),
          static_cast<unsigned long long>(tx.accesses),
          static_cast<unsigned long long>(ty.accesses));
      ok = false;
    }
  }
  return ok;
}

KindRun run_kind(const Options& opt, mem::IndexKind kind) {
  bench::BenchOptions bopt = to_bench_options(opt);
  bopt.l2_index = kind;
  const std::vector<std::string> arms = {"model", "static_equal", "shared",
                                         "throughput"};
  const sim::ExperimentSpec spec = bench::profile_sweep(
      bopt, trace::benchmark_names(), arms,
      std::string("hotpath_") + std::string(mem::to_string(kind)));

  KindRun run;
  run.kind = kind;
  sim::BatchPolicy policy;
  policy.lockstep = opt.lockstep;
  const sim::BatchRunner runner(opt.jobs, policy);
  for (std::uint32_t r = 0; r < opt.warmup + opt.reps; ++r) {
    sim::BatchResult batch = runner.run(spec);
    const double seconds = serial_seconds_of(batch, kind);
    if (r < opt.warmup) continue;
    run.rep_seconds.push_back(seconds);
    if (run.batch.arms.empty()) {
      run.batch = std::move(batch);
    } else if (!batches_identical(run.batch, batch, "across reps")) {
      std::exit(1);
    }
  }
  run.median_seconds = median(run.rep_seconds);
  for (const sim::ArmOutcome& arm : run.batch.arms) {
    run.accesses += arm.result.l2_stats.total().accesses;
  }
  return run;
}

void write_kind(obs::JsonWriter& w, const KindRun& run) {
  w.begin_object()
      .key("index")
      .value(mem::to_string(run.kind))
      .key("serial_seconds")
      .value(run.median_seconds)
      .key("rep_seconds")
      .begin_array();
  for (const double s : run.rep_seconds) w.value(s);
  w.end_array()
      .key("accesses")
      .value(run.accesses)
      .key("accesses_per_sec")
      .value(run.median_seconds > 0.0
                 ? static_cast<double>(run.accesses) / run.median_seconds
                 : 0.0)
      .key("arms")
      .begin_array();
  for (const sim::ArmOutcome& arm : run.batch.arms) {
    w.begin_object()
        .key("name")
        .value(arm.name)
        .key("wall_seconds")
        .value(arm.wall_seconds)
        .key("accesses")
        .value(arm.result.l2_stats.total().accesses)
        .end_object();
  }
  w.end_array().end_object();
}

/// Reads `path`'s speedup_hash_over_scan; exits on parse failure.
double baseline_speedup(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto doc = obs::parse_json(buf.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "baseline %s is not valid JSON: %s\n", path.c_str(),
                 error.c_str());
    std::exit(1);
  }
  const obs::JsonValue* speedup = doc->find("speedup_hash_over_scan");
  if (speedup == nullptr || !speedup->is_number()) {
    std::fprintf(stderr, "baseline %s lacks speedup_hash_over_scan\n",
                 path.c_str());
    std::exit(1);
  }
  return speedup->as_double();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  std::printf(
      "capart_perfsmoke: fig19-21 arm union, scan vs hash tag lookup\n"
      "  intervals=%u threads=%u seed=%llu jobs=%u intra-jobs=%u "
      "reps=%u warmup=%u spool=%s lockstep=%s simd=%s\n",
      opt.intervals, static_cast<unsigned>(opt.threads),
      static_cast<unsigned long long>(opt.seed), opt.jobs, opt.intra_jobs,
      opt.reps, opt.warmup,
      opt.trace_dir.empty() ? "off" : opt.trace_dir.c_str(),
      opt.lockstep ? "on" : "off",
      std::string(mem::simd::backend_name()).c_str());

  const double resolve_seconds = warm_spool_stage(opt);
  if (!opt.trace_dir.empty()) {
    std::printf("  resolve stage (spool acquire, all profiles): %.2fs\n",
                resolve_seconds);
  }

  const KindRun scan = run_kind(opt, mem::IndexKind::kScan);
  const KindRun hash = run_kind(opt, mem::IndexKind::kHash);
  if (!batches_identical(scan.batch, hash.batch, "scan vs hash")) return 1;

  const double speedup = hash.median_seconds > 0.0
                             ? scan.median_seconds / hash.median_seconds
                             : 0.0;
  for (const KindRun* run : {&scan, &hash}) {
    std::printf("  %s: median %.2fs serial over %zu reps (%.3g accesses/s)"
                " [reps:",
                std::string(mem::to_string(run->kind)).c_str(),
                run->median_seconds, run->rep_seconds.size(),
                static_cast<double>(run->accesses) / run->median_seconds);
    for (const double s : run->rep_seconds) std::printf(" %.2f", s);
    std::printf("]\n");
  }
  std::printf("  speedup (hash over scan, medians): %.2fx\n", speedup);

  obs::JsonWriter w;
  w.begin_object()
      .key("bench")
      .value("hotpath")
      .key("intervals")
      .value(opt.intervals)
      .key("threads")
      .value(static_cast<std::uint32_t>(opt.threads))
      .key("seed")
      .value(opt.seed)
      .key("jobs")
      .value(opt.jobs)
      .key("intra_jobs")
      .value(opt.intra_jobs)
      .key("trace_spool")
      .value(!opt.trace_dir.empty())
      .key("lockstep")
      .value(opt.lockstep)
      .key("simd_backend")
      .value(mem::simd::backend_name())
      .key("resolve_seconds")
      .value(resolve_seconds)
      .key("reps")
      .value(opt.reps)
      .key("warmup")
      .value(opt.warmup)
      .key("bit_identical")
      .value(true)
      .key("speedup_hash_over_scan")
      .value(speedup)
      .key("kinds")
      .begin_array();
  write_kind(w, scan);
  write_kind(w, hash);
  w.end_array().end_object();

  std::ofstream out(opt.out, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  out << w.str() << '\n';
  out.close();
  std::printf("  wrote %s\n", opt.out.c_str());

  if (!opt.check.empty()) {
    const double base = baseline_speedup(opt.check);
    const double floor = base * (1.0 - opt.tolerance);
    std::printf(
        "  baseline speedup %.2fx, tolerance %.0f%% -> floor %.2fx: %s\n",
        base, opt.tolerance * 100.0, floor,
        speedup >= floor ? "ok" : "REGRESSION");
    if (speedup < floor) {
      std::fprintf(stderr,
                   "perf regression: hash-over-scan median speedup %.2fx fell "
                   "below %.2fx (baseline %.2fx - %.0f%%)\n",
                   speedup, floor, base, opt.tolerance * 100.0);
      return 1;
    }
  }
  return 0;
}
