// capart_events — validate, filter and summarize JSONL event files produced
// by the observability subsystem (capart_sim --events-out=, bench
// --events-out=).
//
//   capart_events events.jsonl                 summary tables
//   capart_events --validate events.jsonl      schema check; exit 1 on issues
//   capart_events --filter=repartition events.jsonl   matching lines to stdout
//   capart_events --run=cg/model events.jsonl  restrict to one run label
//
// --filter and --run compose; the summary respects --run too.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/event_log.hpp"
#include "src/report/table.hpp"

namespace {

using namespace capart;

[[noreturn]] void usage(int code) {
  std::printf(R"(capart_events — inspect capart JSONL event files

usage: capart_events [flags] FILE

flags:
  --validate            check every line against the event schema; print the
                        issues and exit non-zero if any are found
  --filter=TYPE[,..]    print the raw lines of the given event types
                        (manifest interval repartition barrier_stall
                        migration run_end) and exit
  --run=NAME            restrict --filter / the summary to one run label
  --help

With no flags, prints per-type counts and a per-run summary table.
)");
  std::exit(code);
}

std::vector<std::string> split_list(std::string_view v) {
  std::vector<std::string> items;
  while (!v.empty()) {
    const auto comma = v.find(',');
    items.emplace_back(v.substr(0, comma));
    if (comma == std::string_view::npos) break;
    v.remove_prefix(comma + 1);
  }
  return items;
}

bool contains(const std::vector<std::string>& names, std::string_view name) {
  for (const std::string& candidate : names) {
    if (candidate == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  std::vector<std::string> filter_types;
  std::string run_filter;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    const std::string_view key = arg.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : arg.substr(eq + 1);
    if (key == "--help" || key == "-h") usage(0);
    else if (key == "--validate") validate = true;
    else if (key == "--filter") filter_types = split_list(value);
    else if (key == "--run") run_filter = std::string(value);
    else if (arg.starts_with("--")) {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage(2);
    } else if (path.empty()) {
      path = std::string(arg);
    } else {
      std::fprintf(stderr, "multiple input files given\n");
      usage(2);
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "no input file given\n");
    usage(2);
  }

  std::ifstream is(path);
  if (!is.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const obs::EventLog log = obs::read_event_log(is);

  if (validate) {
    for (const obs::ValidationIssue& issue : log.issues) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), issue.line,
                   issue.message.c_str());
    }
    if (!log.ok()) {
      std::fprintf(stderr, "%zu issue(s) in %zu event line(s)\n",
                   log.issues.size(), log.events.size());
      return 1;
    }
    std::printf("%s: %zu events, schema OK\n", path.c_str(),
                log.events.size());
    return 0;
  }

  if (!filter_types.empty()) {
    // Re-read the raw lines so filtered output is byte-identical to the
    // input (parsing and re-serializing could reorder or reformat). Events
    // are stored in line order, so one cursor tracks the current line.
    std::ifstream raw(path);
    std::string line;
    std::size_t line_no = 0;
    std::size_t matched = 0;
    std::size_t next = 0;
    while (std::getline(raw, line)) {
      ++line_no;
      while (next < log.events.size() && log.events[next].line < line_no) {
        ++next;
      }
      if (next >= log.events.size() || log.events[next].line != line_no) {
        continue;
      }
      const obs::ParsedEvent& event = log.events[next];
      if (contains(filter_types, event.type) &&
          (run_filter.empty() || event.run == run_filter)) {
        std::cout << line << "\n";
        ++matched;
      }
    }
    std::fprintf(stderr, "%zu matching event(s)\n", matched);
    return 0;
  }

  obs::EventLog selected;
  for (const obs::ParsedEvent& event : log.events) {
    if (run_filter.empty() || event.run == run_filter) {
      selected.events.push_back(event);
    }
  }
  const obs::EventLogSummary summary = obs::summarize(selected);

  std::printf("%s: %llu events", path.c_str(),
              static_cast<unsigned long long>(summary.total_events));
  if (!log.issues.empty()) {
    std::printf(" (%zu schema issues; run --validate)", log.issues.size());
  }
  std::printf("\n\n");

  report::Table types({"event type", "count"});
  for (const auto& [type, count] : summary.per_type) {
    types.add_row({type, std::to_string(count)});
  }
  types.print(std::cout);

  if (!summary.runs.empty()) {
    std::cout << "\n";
    report::Table runs({"run", "events", "intervals", "repartitions",
                        "stalls", "threads", "cycles", "wall"});
    for (const obs::RunLogSummary& run : summary.runs) {
      runs.add_row({run.run, std::to_string(run.events),
                    std::to_string(run.intervals),
                    std::to_string(run.repartitions),
                    std::to_string(run.barrier_stalls),
                    std::to_string(run.threads),
                    run.has_run_end ? std::to_string(run.total_cycles) : "-",
                    run.has_run_end
                        ? report::fmt(run.wall_seconds * 1e3, 1) + " ms"
                        : "-"});
    }
    runs.print(std::cout);
  }
  return 0;
}
