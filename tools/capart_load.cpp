// capart_load — load generator for capart_serve (README "Serving
// experiments over HTTP").
//
//   capart_load --port=PORT [--connections=64] [--requests=10]
//               [--hot-fraction=0.9] [--hot-keys=4] [--threads=2]
//               [--intervals=2] [--deadline=30]
//
// Opens --connections keep-alive connections to 127.0.0.1:PORT and drives
// --requests POST /run submissions down each. A submission is "hot" with
// probability --hot-fraction — one of --hot-keys shared specs, so repeats
// hit the daemon's result cache — and otherwise "cold" (a unique seed, so
// it must execute). Cold load is what exercises admission control; 429
// responses are expected under pressure, counted and retried not at all
// (backpressure is the feature under test, not an error).
//
// Verifies on every response: a parseable HTTP/1.1 message with a JSON
// body; hot responses byte-identical to the first body seen for that key.
// Prints a throughput/latency/status summary and exits non-zero on any
// protocol error, connection failure, lost response or hot-body mismatch.
#include <algorithm>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/parse.hpp"
#include "src/common/rng.hpp"

namespace {

using namespace capart;

struct LoadOptions {
  std::uint16_t port = 0;
  std::size_t connections = 64;
  std::size_t requests_per_connection = 10;
  double hot_fraction = 0.9;
  std::size_t hot_keys = 4;
  std::uint32_t threads = 2;
  std::uint32_t intervals = 2;
  double deadline_seconds = 30.0;
};

/// One worker's tally, merged at the end.
struct WorkerStats {
  std::vector<double> latencies_seconds;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;    ///< 429 — expected under pressure
  std::uint64_t draining = 0;    ///< 503
  std::uint64_t other_status = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t errors = 0;  ///< protocol/connection/verification failures
  std::string first_error;
};

void note_error(WorkerStats& stats, const std::string& what) {
  ++stats.errors;
  if (stats.first_error.empty()) stats.first_error = what;
}

std::string spec_body(const LoadOptions& options, std::uint64_t seed) {
  std::string body = "{\"name\":\"load\",\"deadline_seconds\":";
  body += std::to_string(options.deadline_seconds);
  body += ",\"config\":{\"profile\":\"cg\",\"threads\":";
  body += std::to_string(options.threads);
  body += ",\"intervals\":";
  body += std::to_string(options.intervals);
  body += ",\"interval_instructions\":60000,\"seed\":";
  body += std::to_string(seed);
  body += "}}";
  return body;
}

std::string post_run(const std::string& body) {
  std::string out =
      "POST /run HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\n\r\n";
  out += body;
  return out;
}

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

/// One parsed response off a keep-alive stream.
struct Response {
  int status = 0;
  bool cache_hit = false;
  std::string body;
};

/// Reads one Content-Length-framed response from `fd`; `carry` holds bytes
/// already read past the previous message. Returns false on any protocol or
/// socket error (`what` says which).
bool read_response(int fd, std::string& carry, Response& response,
                   std::string& what) {
  auto fill = [&]() -> bool {
    char buffer[16 * 1024];
    const ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
    if (got <= 0) {
      what = got == 0 ? "connection closed mid-response"
                      : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    carry.append(buffer, static_cast<std::size_t>(got));
    return true;
  };

  std::size_t head_end;
  while ((head_end = carry.find("\r\n\r\n")) == std::string::npos) {
    if (carry.size() > 64 * 1024) {
      what = "response headers exceed 64 KiB";
      return false;
    }
    if (!fill()) return false;
  }
  const std::string_view head = std::string_view(carry).substr(0, head_end);
  if (!head.starts_with("HTTP/1.1 ") || head.size() < 12) {
    what = "malformed status line";
    return false;
  }
  response.status = (head[9] - '0') * 100 + (head[10] - '0') * 10 +
                    (head[11] - '0');
  response.cache_hit =
      head.find("X-Capart-Cache: hit") != std::string_view::npos;

  const std::string_view length_name = "Content-Length: ";
  const std::size_t length_at = head.find(length_name);
  if (length_at == std::string_view::npos) {
    what = "response without Content-Length";
    return false;
  }
  std::size_t body_bytes = 0;
  for (std::size_t i = length_at + length_name.size();
       i < head.size() && head[i] >= '0' && head[i] <= '9'; ++i) {
    body_bytes = body_bytes * 10 + static_cast<std::size_t>(head[i] - '0');
  }
  const std::size_t body_at = head_end + 4;
  while (carry.size() < body_at + body_bytes) {
    if (!fill()) return false;
  }
  response.body = carry.substr(body_at, body_bytes);
  carry.erase(0, body_at + body_bytes);
  return true;
}

void usage(std::ostream& os) {
  os << "usage: capart_load --port=PORT [--connections=N] [--requests=N]\n"
        "                   [--hot-fraction=F] [--hot-keys=N] "
        "[--threads=N]\n"
        "                   [--intervals=N] [--deadline=SECONDS]\n";
}

bool flag_value(std::string_view arg, std::string_view name,
                std::string_view& value) {
  if (arg.size() <= name.size() + 1 || !arg.starts_with(name) ||
      arg[name.size()] != '=') {
    return false;
  }
  value = arg.substr(name.size() + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      std::string_view value;
      if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else if (flag_value(arg, "--port", value)) {
        options.port = static_cast<std::uint16_t>(
            parse_u32_flag(value, "--port", 65535));
      } else if (flag_value(arg, "--connections", value)) {
        options.connections = parse_u32_flag(value, "--connections", 65536);
      } else if (flag_value(arg, "--requests", value)) {
        options.requests_per_connection =
            parse_u32_flag(value, "--requests");
      } else if (flag_value(arg, "--hot-fraction", value)) {
        options.hot_fraction = parse_f64_flag(value, "--hot-fraction");
      } else if (flag_value(arg, "--hot-keys", value)) {
        options.hot_keys = parse_u32_flag(value, "--hot-keys", 1 << 20);
      } else if (flag_value(arg, "--threads", value)) {
        options.threads = parse_u32_flag(value, "--threads");
      } else if (flag_value(arg, "--intervals", value)) {
        options.intervals = parse_u32_flag(value, "--intervals");
      } else if (flag_value(arg, "--deadline", value)) {
        options.deadline_seconds = parse_f64_flag(value, "--deadline");
      } else {
        std::cerr << "capart_load: unknown argument '" << arg << "'\n";
        usage(std::cerr);
        return 2;
      }
    }
    if (options.port == 0) {
      std::cerr << "capart_load: --port is required\n";
      usage(std::cerr);
      return 2;
    }
    if (options.hot_keys == 0) options.hot_keys = 1;
  } catch (const capart::Error& error) {
    std::cerr << "capart_load: " << error.what() << "\n";
    return 2;
  }

  // First body seen per hot key — every later hot response must match it
  // byte for byte (the daemon's cache-identity contract).
  std::mutex hot_mutex;
  std::vector<std::string> hot_bodies(options.hot_keys);

  std::vector<WorkerStats> stats(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  const auto start = std::chrono::steady_clock::now();

  for (std::size_t w = 0; w < options.connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerStats& mine = stats[w];
      Rng rng(0x10adu + static_cast<std::uint64_t>(w));
      const int fd = dial(options.port);
      if (fd < 0) {
        note_error(mine, std::string("connect: ") + std::strerror(errno));
        return;
      }
      std::string carry;
      for (std::size_t r = 0; r < options.requests_per_connection; ++r) {
        const bool hot = rng.chance(options.hot_fraction);
        const std::size_t hot_key =
            static_cast<std::size_t>(rng.below(options.hot_keys));
        // Hot seeds are shared across workers; cold seeds are unique, so
        // the daemon must actually execute them.
        const std::uint64_t seed =
            hot ? 1000 + hot_key
                : 0xC01Du * (w * options.requests_per_connection + r + 1);
        const std::string body = spec_body(options, seed);

        const auto sent_at = std::chrono::steady_clock::now();
        if (!send_all(fd, post_run(body))) {
          note_error(mine, std::string("send: ") + std::strerror(errno));
          break;
        }
        Response response;
        std::string what;
        if (!read_response(fd, carry, response, what)) {
          note_error(mine, what);
          break;
        }
        mine.latencies_seconds.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          sent_at)
                .count());
        if (response.cache_hit) ++mine.cache_hits;
        if (response.status == 200) {
          ++mine.ok;
          if (response.body.find("\"ok\":") == std::string::npos) {
            note_error(mine, "200 response without an \"ok\" field");
          } else if (hot) {
            const std::lock_guard<std::mutex> lock(hot_mutex);
            if (hot_bodies[hot_key].empty()) {
              hot_bodies[hot_key] = response.body;
            } else if (hot_bodies[hot_key] != response.body) {
              note_error(mine, "hot spec response bytes diverged");
            }
          }
        } else if (response.status == 429) {
          ++mine.rejected;
        } else if (response.status == 503) {
          ++mine.draining;
        } else {
          ++mine.other_status;
          note_error(mine, "unexpected status " +
                               std::to_string(response.status) + ": " +
                               response.body);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  WorkerStats total;
  for (const WorkerStats& s : stats) {
    total.ok += s.ok;
    total.rejected += s.rejected;
    total.draining += s.draining;
    total.other_status += s.other_status;
    total.cache_hits += s.cache_hits;
    total.errors += s.errors;
    if (total.first_error.empty()) total.first_error = s.first_error;
    total.latencies_seconds.insert(total.latencies_seconds.end(),
                                   s.latencies_seconds.begin(),
                                   s.latencies_seconds.end());
  }
  std::sort(total.latencies_seconds.begin(), total.latencies_seconds.end());
  auto percentile = [&](double q) {
    if (total.latencies_seconds.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(total.latencies_seconds.size() - 1));
    return total.latencies_seconds[rank];
  };
  const std::size_t answered = total.latencies_seconds.size();
  const std::size_t expected =
      options.connections * options.requests_per_connection;

  std::cout << "connections " << options.connections << "  requests "
            << answered << "/" << expected << "  wall " << wall << " s  ("
            << (wall > 0.0 ? static_cast<double>(answered) / wall : 0.0)
            << " req/s)\n"
            << "status: 200=" << total.ok << " 429=" << total.rejected
            << " 503=" << total.draining << " other=" << total.other_status
            << "  cache_hits=" << total.cache_hits << "\n"
            << "latency: p50=" << percentile(0.5)
            << " s  p90=" << percentile(0.9)
            << " s  p99=" << percentile(0.99)
            << " s  max=" << percentile(1.0) << " s\n";
  if (total.errors != 0) {
    std::cerr << "capart_load: " << total.errors
              << " error(s); first: " << total.first_error << "\n";
    return 1;
  }
  if (answered != expected) {
    std::cerr << "capart_load: lost " << (expected - answered)
              << " response(s)\n";
    return 1;
  }
  return 0;
}
