// capart_sim — command-line front end for the simulator.
//
// Runs one experiment and reports totals, per-thread statistics and
// (optionally) the per-interval series as CSV, exposing every knob the
// library configuration offers:
//
//   capart_sim --profile=cg --policy=model --l2-mode=partitioned
//              --intervals=40 --interval-instr=240000 --csv=intervals.csv
//
// --profile and --policy accept comma-separated lists; the cross product
// becomes a batch that runs concurrently (--jobs=N, default: all cores)
// with one summary row per arm. Batch results are bit-identical for any
// jobs count.
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/parse.hpp"
#include "src/core/partitioner_registry.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/jsonl_sink.hpp"
#include "src/obs/metrics.hpp"
#include "src/report/batch_summary.hpp"
#include "src/report/csv.hpp"
#include "src/report/table.hpp"
#include "src/sim/batch.hpp"
#include "src/sim/experiment.hpp"
#include "src/trace/benchmarks.hpp"

namespace {

using namespace capart;

[[noreturn]] void usage(int code) {
  std::printf(R"(capart_sim — intra-application cache partitioning simulator

flags:
  --profile=NAME[,..]   workload: cg mg ft lu bt swim mgrid applu equake
                        (a comma-separated list runs every profile)
  --policy=NAME[,..]    a registered partitioner (canonical name or alias;
                        see --list-policies) or none for a pure monitor
                        (a comma-separated list runs every policy)
  --list-policies       print every registered partitioner with its aliases,
                        options and summary, then exit
  --l2-mode=NAME        shared partitioned private coloring flush
  --threads=N           cores/threads (default 4)
  --intervals=N         execution intervals (default 40)
  --interval-instr=N    aggregate instructions per interval (default 240000)
  --l2-ways=N           shared-cache associativity (default 64)
  --l2-sets=N           shared-cache sets (default 256)
  --l2-repl=NAME        shared-cache replacement: lru plru srrip (default lru)
  --l1-repl=NAME        private-L1 replacement: lru plru srrip (default lru)
  --l2-index=NAME       shared-cache tag lookup: scan hash auto (default
                        auto); results are bit-identical across kinds
  --overhead=N          runtime repartition overhead in cycles (default 800)
  --l2-banks=N          shared-cache banks: address-interleaved structure +
                        bank-contention timing (0 = monolithic, no
                        contention; N must be a power of two)
  --l2-enforce=NAME     partition enforcement: default eviction-control clos
                        (clos = CAT-style way masks; supports threads > ways)
  --clos-budget=N       CLOS count with --l2-enforce=clos (default 8)
  --clos-mapper=NAME    thread->CLOS clustering: none nearest minmax lfoc
                        (default nearest; lfoc clusters on the classes a
                        classifying policy publishes)
  --seed=N              workload seed (default 42)
  --jobs=N              concurrent experiments in batch mode (default: all
                        cores); results are bit-identical for any value
  --intra-jobs=N        worker threads inside each experiment (parallel
                        trace-spool resolves + sharded monitor feeding);
                        results are bit-identical for any value (default 1)
  --trace-dir=DIR       resolved-trace spool directory (default off); runs
                        sharing a workload profile amortize one
                        generate+resolve pass; results are bit-identical
  --trace-dir-max-bytes=N  evict least-recently-used spool files above this
                        many bytes after each acquisition (default 0 = keep
                        everything; files held by this process are exempt)
  --lockstep[=0|1]      batch mode: arms sharing a spool identity replay one
                        shared decoded trace in lockstep (default off);
                        results are bit-identical
  --arm-retries=N       batch mode: re-run a failed arm up to N times
                        (default 0)
  --arm-deadline=SEC    batch mode: per-arm wall-clock budget in seconds; an
                        expired arm stops at its next interval boundary and
                        reports timed_out (default: none)
  --private-l2          insert private per-core L2s (shared cache becomes L3)
  --csv=PATH            write the per-interval series as CSV; in batch mode
                        PATH is a stem and each arm writes
                        stem.<profile>.<policy>.csv
  --events-out=PATH     write structured JSONL run telemetry (manifest,
                        intervals, repartitions, barrier stalls, migrations,
                        run end); batch arms share the file, tagged by arm
  --trace-out=PATH      write a Chrome trace-event timeline (open in
                        https://ui.perfetto.dev); in batch mode PATH is a
                        stem and each arm writes stem.<profile>.<policy>.json
  --metrics             print the metrics-registry rollup after the run
  --quiet               print only the one-line summary
  --help
)");
  std::exit(code);
}

/// The registry is the source of truth for --policy: any canonical name or
/// alias resolves; anything else lists what would have been accepted.
std::string parse_policy(std::string_view v) {
  const std::string_view canonical = core::registry().canonical(v);
  if (canonical.empty()) {
    std::fprintf(stderr, "unknown policy '%.*s' (expected %s)\n",
                 int(v.size()), v.data(),
                 core::registry().known_names(/*include_none=*/true).c_str());
    usage(2);
  }
  return std::string(canonical);
}

[[noreturn]] void list_policies() {
  std::printf(
      "registered partitioners (--policy accepts canonical names or "
      "aliases):\n");
  for (const core::Partitioner* p : core::registry().describe()) {
    std::printf("\n  %s", p->name.c_str());
    for (const std::string& alias : p->aliases) {
      std::printf(" (alias: %s)", alias.c_str());
    }
    if (p->needs_utility_monitor) std::printf(" [needs shadow-tag UMON]");
    if (!p->dynamic) std::printf(" [static]");
    std::printf("\n      %s\n", p->summary.c_str());
    for (const core::PartitionerOption& opt : p->options) {
      std::printf("      option %.*s: %.*s\n", int(opt.key.size()),
                  opt.key.data(), int(opt.doc.size()), opt.doc.data());
    }
  }
  std::printf("\n  none\n      pure monitor: no repartitioning at all\n");
  std::exit(0);
}

mem::L2Mode parse_mode(std::string_view v) {
  if (v == "shared") return mem::L2Mode::kSharedUnpartitioned;
  if (v == "partitioned") return mem::L2Mode::kPartitionedShared;
  if (v == "private") return mem::L2Mode::kPrivatePerThread;
  if (v == "coloring") return mem::L2Mode::kSetPartitionedShared;
  if (v == "flush") return mem::L2Mode::kFlushReconfigureShared;
  std::fprintf(stderr, "unknown l2 mode '%.*s'\n", int(v.size()), v.data());
  usage(2);
}

mem::ReplacementKind parse_repl(std::string_view v, const char* flag) {
  mem::ReplacementKind kind{};
  if (!mem::parse_replacement(v, kind)) {
    std::fprintf(stderr, "invalid value for %s: want lru, plru or srrip\n",
                 flag);
    usage(2);
  }
  return kind;
}

mem::IndexKind parse_index(std::string_view v, const char* flag) {
  mem::IndexKind kind{};
  if (!mem::parse_index_kind(v, kind)) {
    std::fprintf(stderr, "invalid value for %s: want scan, hash or auto\n",
                 flag);
    usage(2);
  }
  return kind;
}

mem::L2Enforce parse_enforce(std::string_view v) {
  mem::L2Enforce enforce{};
  if (!mem::parse_l2_enforce(v, enforce)) {
    std::fprintf(stderr,
                 "invalid value for --l2-enforce: want default, "
                 "eviction-control or clos\n");
    usage(2);
  }
  return enforce;
}

core::ClosMapperKind parse_mapper(std::string_view v) {
  core::ClosMapperKind kind{};
  if (!core::parse_clos_mapper(v, kind)) {
    std::fprintf(stderr,
                 "invalid value for --clos-mapper: want none, nearest, "
                 "minmax or lfoc\n");
    usage(2);
  }
  return kind;
}

/// Batch output files derive from a stem: "runs.csv" -> "runs", so arm files
/// become runs.<profile>.<policy>.csv rather than runs.csv.cg.model.csv.
std::string strip_suffix(std::string path, std::string_view suffix) {
  if (path.size() > suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    path.resize(path.size() - suffix.size());
  }
  return path;
}

/// "cg/model" -> "cg.model" (arm keys become file-name fragments).
std::string arm_file_fragment(std::string arm) {
  for (char& ch : arm) {
    if (ch == '/') ch = '.';
  }
  return arm;
}

bool open_or_die(std::ofstream& os, const std::string& path) {
  os.open(path);
  if (!os.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentConfig cfg;
  std::vector<std::string> profiles = {cfg.profile};
  // (display name as typed, canonical registry name) pairs: the user's
  // spelling names the arm (and its output files), the canonical name goes
  // into the config. The default mirrors ExperimentConfig's default.
  std::vector<std::pair<std::string, std::string>> policies = {
      {"model", cfg.policy}};
  bool had_policy_flag = false;
  unsigned jobs = 0;
  sim::BatchPolicy batch_policy;
  std::string csv_path;
  std::string events_path;
  std::string trace_path;
  bool want_metrics = false;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto eq = arg.find('=');
      const std::string_view key = arg.substr(0, eq);
      const std::string_view value = eq == std::string_view::npos
                                         ? std::string_view{}
                                         : arg.substr(eq + 1);
      if (key == "--help" || key == "-h") usage(0);
      else if (key == "--list-policies") list_policies();
      else if (key == "--profile")
        profiles = split_flag_list(value, "--profile");
      else if (key == "--policy") {
        policies.clear();
        for (const std::string& name : split_flag_list(value, "--policy")) {
          policies.emplace_back(name, parse_policy(name));
        }
        had_policy_flag = true;
      } else if (key == "--l2-mode") cfg.l2_mode = parse_mode(value);
      else if (key == "--threads")
        cfg.num_threads = parse_u32_flag(value, "--threads");
      else if (key == "--intervals")
        cfg.num_intervals = parse_u32_flag(value, "--intervals");
      else if (key == "--interval-instr")
        cfg.interval_instructions = parse_u64_flag(value, "--interval-instr");
      else if (key == "--l2-ways")
        cfg.l2.ways = parse_u32_flag(value, "--l2-ways");
      else if (key == "--l2-sets")
        cfg.l2.sets = parse_u32_flag(value, "--l2-sets");
      else if (key == "--l2-repl") cfg.l2.repl = parse_repl(value, "--l2-repl");
      else if (key == "--l1-repl") cfg.l1.repl = parse_repl(value, "--l1-repl");
      else if (key == "--l2-index")
        cfg.l2.index = parse_index(value, "--l2-index");
      else if (key == "--overhead")
        cfg.runtime_overhead_cycles = parse_u64_flag(value, "--overhead");
      else if (key == "--l2-banks")
        cfg.l2_banks = parse_u32_flag(value, "--l2-banks");
      else if (key == "--l2-enforce") cfg.l2_enforce = parse_enforce(value);
      else if (key == "--clos-budget")
        cfg.clos_budget = parse_u32_flag(value, "--clos-budget");
      else if (key == "--clos-mapper") cfg.clos_mapper = parse_mapper(value);
      else if (key == "--seed") cfg.seed = parse_u64_flag(value, "--seed");
      else if (key == "--jobs") {
        jobs = parse_u32_flag(value, "--jobs");
        if (jobs == 0) {
          std::fprintf(stderr, "invalid value for --jobs: must be >= 1\n");
          usage(2);
        }
      } else if (key == "--intra-jobs") {
        cfg.intra_jobs = parse_u32_flag(value, "--intra-jobs");
        if (cfg.intra_jobs == 0) {
          std::fprintf(stderr,
                       "invalid value for --intra-jobs: must be >= 1\n");
          usage(2);
        }
      } else if (key == "--trace-dir")
        cfg.trace_spool_dir = std::string(value);
      else if (key == "--trace-dir-max-bytes")
        cfg.trace_spool_max_bytes =
            parse_u64_flag(value, "--trace-dir-max-bytes");
      else if (key == "--lockstep") {
        if (value.empty() || value == "1") batch_policy.lockstep = true;
        else if (value == "0") batch_policy.lockstep = false;
        else {
          std::fprintf(stderr, "invalid value for --lockstep: want 0 or 1\n");
          usage(2);
        }
      } else if (key == "--arm-retries")
        batch_policy.max_retries = parse_u32_flag(value, "--arm-retries");
      else if (key == "--arm-deadline")
        batch_policy.arm_deadline_seconds =
            parse_f64_flag(value, "--arm-deadline");
      else if (key == "--private-l2") cfg.enable_private_l2 = true;
      else if (key == "--csv") csv_path = std::string(value);
      else if (key == "--events-out") events_path = std::string(value);
      else if (key == "--trace-out") trace_path = std::string(value);
      else if (key == "--metrics") want_metrics = true;
      else if (key == "--quiet") quiet = true;
      else {
        std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
        usage(2);
      }
    }
  } catch (const Error& error) {
    std::fprintf(stderr, "%s\n", error.what());
    usage(2);
  }
  // Pure monitor runs make sense on non-partitionable organizations; keep
  // the partitioned default policy otherwise.
  if (!had_policy_flag &&
      (cfg.l2_mode == mem::L2Mode::kSharedUnpartitioned ||
       cfg.l2_mode == mem::L2Mode::kPrivatePerThread)) {
    policies = {{"none", std::string(core::kNoPolicyName)}};
  }
  if (profiles.empty() || policies.empty()) {
    std::fprintf(stderr, "empty --profile or --policy list\n");
    usage(2);
  }

  // Several profiles and/or policies: run the cross product as a batch and
  // print one summary row per arm instead of the single-run detail view.
  if (profiles.size() * policies.size() > 1) {
    std::unique_ptr<obs::JsonlSink> sink;
    obs::MetricsRegistry metrics;
    sim::ExperimentSpec spec;
    spec.name = "capart_sim";
    try {
      if (!events_path.empty()) {
        sink = std::make_unique<obs::JsonlSink>(events_path);
      }
      for (const std::string& profile : profiles) {
        for (const auto& [policy_name, policy] : policies) {
          sim::ExperimentConfig arm = cfg;
          arm.profile = profile;
          arm.policy = policy;
          arm.obs.sink = sink.get();
          arm.obs.metrics = want_metrics ? &metrics : nullptr;
          arm.obs.run_name = profile + "/" + policy_name;
          spec.add(profile + "/" + policy_name, std::move(arm));
        }
      }
    } catch (const Error& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
    const sim::BatchRunner runner(jobs, batch_policy);
    const sim::BatchResult batch = runner.run(spec);
    if (sink != nullptr) sink->flush();
    report::Table table(
        {"arm", "status", "cycles", "instructions", "wall-CPI", "wall"});
    for (const sim::ArmOutcome& arm : batch.arms) {
      const std::string wall = report::fmt(arm.wall_seconds * 1e3, 1) + " ms";
      if (!arm.ok()) {
        table.add_row({arm.name, std::string(sim::to_string(arm.status)), "-",
                       "-", "-", wall});
        continue;
      }
      const double arm_cpi =
          static_cast<double>(arm.result.outcome.total_cycles) /
          (static_cast<double>(arm.result.outcome.instructions_retired) /
           cfg.num_threads);
      table.add_row({arm.name, "ok",
                     std::to_string(arm.result.outcome.total_cycles),
                     std::to_string(arm.result.outcome.instructions_retired),
                     report::fmt(arm_cpi, 2), wall});
    }
    if (!quiet) {
      table.print(std::cout);
      std::cout << "\n";
    }
    // Per-arm interval CSVs / Chrome traces: the flag value is a stem, one
    // file per arm (stem.<profile>.<policy>.csv / .json). Failed arms carry
    // no result and write nothing.
    if (!csv_path.empty()) {
      const std::string stem = strip_suffix(csv_path, ".csv");
      for (const sim::ArmOutcome& arm : batch.arms) {
        if (!arm.ok()) continue;
        const std::string path =
            stem + "." + arm_file_fragment(arm.name) + ".csv";
        std::ofstream os;
        if (!open_or_die(os, path)) return 1;
        report::write_interval_csv(os, arm.result.intervals);
      }
      if (!quiet) {
        std::cout << "per-interval CSVs written to " << stem
                  << ".<profile>.<policy>.csv\n";
      }
    }
    if (!trace_path.empty()) {
      const std::string stem = strip_suffix(trace_path, ".json");
      for (const sim::ArmOutcome& arm : batch.arms) {
        if (!arm.ok()) continue;
        const std::string path =
            stem + "." + arm_file_fragment(arm.name) + ".json";
        std::ofstream os;
        if (!open_or_die(os, path)) return 1;
        obs::write_chrome_trace(os, arm.result.intervals, arm.name);
      }
      if (!quiet) {
        std::cout << "Chrome traces written to " << stem
                  << ".<profile>.<policy>.json\n";
      }
    }
    report::print_batch_summary(std::cout, batch,
                                {.list_arms = false, .slowest = 0});
    if (want_metrics) {
      std::cout << "\n";
      metrics.print_rollup(std::cout);
    }
    if (!batch.all_ok()) {
      report::print_failed_arms(std::cerr, batch);
      return 1;
    }
    return 0;
  }

  cfg.profile = profiles.front();
  cfg.policy = policies.front().second;
  std::unique_ptr<obs::JsonlSink> sink;
  obs::MetricsRegistry metrics;
  sim::ExperimentResult r;
  try {
    if (!events_path.empty()) {
      sink = std::make_unique<obs::JsonlSink>(events_path);
      cfg.obs.sink = sink.get();
    }
    if (want_metrics) cfg.obs.metrics = &metrics;
    cfg.obs.run_name = cfg.profile + "/" + policies.front().first;
    r = sim::run_experiment(cfg);
  } catch (const Error& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  if (sink != nullptr) sink->flush();

  const double total_cpi =
      static_cast<double>(r.outcome.total_cycles) /
      (static_cast<double>(r.outcome.instructions_retired) /
       cfg.num_threads);
  std::printf(
      "%s policy=%s l2=%s threads=%u: %llu cycles, %llu instructions, "
      "wall-CPI %.2f\n",
      cfg.profile.c_str(), cfg.policy.c_str(),
      std::string(mem::to_string(cfg.l2_mode)).c_str(), cfg.num_threads,
      static_cast<unsigned long long>(r.outcome.total_cycles),
      static_cast<unsigned long long>(r.outcome.instructions_retired),
      total_cpi);

  if (!quiet) {
    report::Table table({"thread", "CPI", "L2 misses", "exec cycles",
                         "stall cycles", "stall share"});
    for (ThreadId t = 0; t < r.thread_totals.size(); ++t) {
      const auto& c = r.thread_totals[t];
      const double stall_share =
          static_cast<double>(c.stall_cycles) /
          static_cast<double>(c.exec_cycles + c.stall_cycles);
      table.add_row({"t" + std::to_string(t + 1), report::fmt(c.cpi(), 2),
                     std::to_string(c.l2_misses),
                     std::to_string(c.exec_cycles),
                     std::to_string(c.stall_cycles),
                     report::fmt_pct(stall_share, 1)});
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nL2 inter-thread interactions: "
              << report::fmt_pct(r.l2_stats.inter_thread_fraction(), 1)
              << " of accesses ("
              << report::fmt_pct(r.l2_stats.constructive_fraction(), 1)
              << " constructive)\n";
  }

  if (!csv_path.empty()) {
    std::ofstream os;
    if (!open_or_die(os, csv_path)) return 1;
    report::write_interval_csv(os, r.intervals);
    if (!quiet) {
      std::cout << "per-interval series written to " << csv_path << "\n";
    }
  }
  if (!trace_path.empty()) {
    std::ofstream os;
    if (!open_or_die(os, trace_path)) return 1;
    obs::write_chrome_trace(os, r.intervals, cfg.obs.run_name);
    if (!quiet) {
      std::cout << "Chrome trace written to " << trace_path
                << " (open in https://ui.perfetto.dev)\n";
    }
  }
  if (!events_path.empty() && !quiet) {
    std::cout << "events written to " << events_path << " ("
              << sink->events_written() << " events)\n";
  }
  if (want_metrics) {
    std::cout << "\n";
    metrics.print_rollup(std::cout);
  }
  return 0;
}
