// capart_serve — the long-lived experiment daemon (README "Serving
// experiments over HTTP").
//
//   capart_serve [--port=0] [--max-concurrent=2] [--max-queue=16]
//                [--jobs=1] [--cache-entries=1024] [--deadline=0]
//                [--max-body-bytes=1048576] [--events=FILE]
//                [--flush-interval=0.5]
//
// Binds 127.0.0.1 (port 0 = ephemeral; the bound port is printed as
// "listening on 127.0.0.1:PORT" so scripts can scrape it), serves POST /run
// submissions (see src/serve/server.hpp for the endpoint contract), and
// runs until SIGTERM or SIGINT. Shutdown drains: admitted work — queued and
// running — completes and is answered, new submissions get 503, every sink
// is flushed, then the process exits 0.
//
// --events mirrors every run's JSONL events into FILE (in addition to any
// per-request streaming), flushed at least every --flush-interval seconds
// so a tail -f consumer stays live.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "src/common/error.hpp"
#include "src/common/parse.hpp"
#include "src/obs/jsonl_sink.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/server.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

void usage(std::ostream& os) {
  os << "usage: capart_serve [--port=N] [--max-concurrent=N] "
        "[--max-queue=N]\n"
        "                    [--jobs=N] [--cache-entries=N] "
        "[--deadline=SECONDS]\n"
        "                    [--max-body-bytes=N] [--events=FILE]\n"
        "                    [--flush-interval=SECONDS]\n";
}

bool flag_value(std::string_view arg, std::string_view name,
                std::string_view& value) {
  if (arg.size() <= name.size() + 1 || !arg.starts_with(name) ||
      arg[name.size()] != '=') {
    return false;
  }
  value = arg.substr(name.size() + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace capart;

  serve::ServerOptions options;
  std::string events_path;
  double flush_interval = 0.5;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      std::string_view value;
      if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else if (flag_value(arg, "--port", value)) {
        options.port = static_cast<std::uint16_t>(
            parse_u32_flag(value, "--port", 65535));
      } else if (flag_value(arg, "--max-concurrent", value)) {
        options.max_concurrent = parse_u32_flag(value, "--max-concurrent");
      } else if (flag_value(arg, "--max-queue", value)) {
        options.max_queue = parse_u32_flag(value, "--max-queue");
      } else if (flag_value(arg, "--jobs", value)) {
        options.jobs_per_request = parse_u32_flag(value, "--jobs", 512);
      } else if (flag_value(arg, "--cache-entries", value)) {
        options.cache_entries = parse_u32_flag(value, "--cache-entries");
      } else if (flag_value(arg, "--deadline", value)) {
        options.default_deadline_seconds =
            parse_f64_flag(value, "--deadline");
      } else if (flag_value(arg, "--max-body-bytes", value)) {
        options.http.max_body_bytes =
            parse_u64_flag(value, "--max-body-bytes");
      } else if (flag_value(arg, "--events", value)) {
        events_path = std::string(value);
      } else if (flag_value(arg, "--flush-interval", value)) {
        flush_interval = parse_f64_flag(value, "--flush-interval");
      } else {
        std::cerr << "capart_serve: unknown argument '" << arg << "'\n";
        usage(std::cerr);
        return 2;
      }
    }
  } catch (const Error& error) {
    std::cerr << "capart_serve: " << error.what() << "\n";
    return 2;
  }

  std::unique_ptr<obs::JsonlSink> events;
  if (!events_path.empty()) {
    obs::JsonlSinkOptions sink_options;
    sink_options.flush_interval_seconds = flush_interval;
    try {
      events = std::make_unique<obs::JsonlSink>(events_path, sink_options);
    } catch (const Error& error) {
      std::cerr << "capart_serve: " << error.what() << "\n";
      return 1;
    }
    options.event_sink = events.get();
  }

  obs::MetricsRegistry metrics;
  serve::HttpServer server(options, &metrics);
  try {
    server.start();
  } catch (const Error& error) {
    std::cerr << "capart_serve: " << error.what() << "\n";
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  // Line-buffered and flushed immediately: scripts block on this line to
  // learn the ephemeral port.
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const int sig = g_signal.load();
  std::cout << "received " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
            << ", draining" << std::endl;

  server.shutdown();     // completes queued + running work, answers it
  // Retire, not just flush: no sink may touch its stream again once static
  // destruction starts tearing streams down under still-running threads.
  obs::JsonlSink::shutdown_all();
  std::cout << "drained cleanly" << std::endl;
  return 0;
}
