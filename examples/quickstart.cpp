// Quickstart: run one multithreaded application on the simulated 4-core CMP
// under dynamic model-based cache partitioning and print what the runtime
// did at each interval.
//
//   ./example_quickstart [profile]
//
// Profiles: cg mg ft lu bt swim mgrid applu equake (NAS / SPEC OMP
// stand-ins; see src/trace/benchmarks.hpp).
#include <iostream>
#include <string>

#include "src/report/table.hpp"
#include "src/sim/experiment.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;

  // 1. Describe the experiment. Defaults mirror the paper's Fig 2 system:
  //    four cores, private 8 KB L1s, shared 1 MB 64-way L2.
  sim::ExperimentConfig config;
  config.profile = argc > 1 ? argv[1] : "cg";
  config.l2_mode = mem::L2Mode::kPartitionedShared;
  config.policy = "model-based";  // the paper's scheme
  config.num_intervals = 30;
  config.interval_instructions = 240'000;

  std::cout << "running '" << config.profile
            << "' under model-based intra-application cache partitioning\n\n";

  // 2. Run it. Everything — workload synthesis, caches, cores, barriers,
  //    the runtime system — is wired up by run_experiment().
  const sim::ExperimentResult result = sim::run_experiment(config);

  // 3. Inspect the per-interval decisions the runtime made.
  report::Table table({"interval", "ways (t1/t2/t3/t4)", "overall CPI",
                       "critical thread"});
  for (const auto& rec : result.intervals) {
    std::string ways;
    for (std::size_t t = 0; t < rec.threads.size(); ++t) {
      ways += std::to_string(rec.threads[t].ways);
      if (t + 1 < rec.threads.size()) ways += "/";
    }
    table.add_row({std::to_string(rec.index + 1), ways,
                   report::fmt(rec.max_cpi(), 2),
                   "t" + std::to_string(rec.critical_thread() + 1)});
  }
  table.print(std::cout);

  std::cout << "\ntotal execution: " << result.outcome.total_cycles
            << " cycles for " << result.outcome.instructions_retired
            << " instructions\n";

  // 4. Compare against the unpartitioned shared cache in one more line.
  sim::ExperimentConfig baseline = config;
  baseline.l2_mode = mem::L2Mode::kSharedUnpartitioned;
  baseline.policy = "none";
  const sim::ExperimentResult shared = sim::run_experiment(baseline);
  std::cout << "improvement over the shared unpartitioned cache: "
            << report::fmt_pct(sim::improvement(result, shared), 1) << "\n";
  return 0;
}
