// Building a workload from scratch: instead of a named profile, this example
// constructs per-thread phase schedules directly and drives the simulator
// with the low-level API — the path a user takes to model their own
// application's threads.
#include <iostream>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/partitioner_registry.hpp"
#include "src/core/runtime_system.hpp"
#include "src/report/table.hpp"
#include "src/sim/cmp_system.hpp"
#include "src/sim/driver.hpp"
#include "src/sim/experiment.hpp"
#include "src/trace/phase.hpp"

int main() {
  using namespace capart;

  // --- Describe four threads of a made-up solver ---------------------------
  // Thread 0: the "assembly" thread — a large, irregular working set, the
  // one we expect on the critical path.
  trace::Phase assembly;
  assembly.params.working_set_blocks = 13'000;
  assembly.params.mem_ratio = 0.33;
  assembly.params.reuse_skew = 2.2;
  assembly.params.p_new = 0.05;
  assembly.params.prefetch_friendly_streams = false;
  assembly.params.share_fraction = 0.05;

  // Thread 1: a streaming I/O formatter — pollutes, rarely stalls.
  trace::Phase streaming;
  streaming.params.working_set_blocks = 1'500;
  streaming.params.mem_ratio = 0.22;
  streaming.params.p_new = 0.20;
  streaming.params.share_fraction = 0.05;

  // Threads 2-3: compute workers that alternate between a dense and a
  // sparse phase every ~400k instructions.
  trace::Phase dense;
  dense.params.working_set_blocks = 3'800;
  dense.params.mem_ratio = 0.28;
  dense.duration = 400'000;
  trace::Phase sparse = dense;
  sparse.params.working_set_blocks = 1'200;
  sparse.params.mem_ratio = 0.18;
  sparse.duration = 300'000;

  const std::vector<trace::PhaseSchedule> schedules = {
      trace::PhaseSchedule({assembly}),
      trace::PhaseSchedule({streaming}),
      trace::PhaseSchedule({dense, sparse}),
      trace::PhaseSchedule({sparse, dense}),  // out of phase with thread 2
  };

  // --- Wire up the system ---------------------------------------------------
  sim::SystemConfig sys_cfg;  // paper Fig 2 defaults
  sim::CmpSystem system(sys_cfg);

  const Rng root(7);
  std::vector<std::unique_ptr<trace::OpSource>> generators;
  for (ThreadId t = 0; t < 4; ++t) {
    generators.push_back(std::make_unique<trace::PhasedGenerator>(
        schedules[t], root.fork(t), sim::private_region_base(t),
        sim::shared_region_base()));
  }

  sim::DriverConfig driver_cfg;
  driver_cfg.interval_instructions = 240'000;
  sim::Driver driver(system, sim::make_uniform_program(4, 10, 1'800'000),
                     std::move(generators), driver_cfg);
  core::RuntimeSystem runtime(system, core::registry().make("model-based"),
                              /*overhead_cycles=*/800);
  driver.set_interval_callback(runtime.callback());

  const sim::RunOutcome outcome = driver.run();

  // --- Report ---------------------------------------------------------------
  std::cout << "custom workload under model-based partitioning\n\n";
  report::Table table({"thread", "role", "CPI", "final ways", "stall share"});
  const char* roles[] = {"assembly (critical)", "streaming formatter",
                         "worker A", "worker B"};
  const auto& last = runtime.history().back();
  for (ThreadId t = 0; t < 4; ++t) {
    const auto& c = system.counters().thread(t);
    const double stall_share =
        static_cast<double>(c.stall_cycles) /
        static_cast<double>(c.exec_cycles + c.stall_cycles);
    table.add_row({"t" + std::to_string(t + 1), roles[t],
                   report::fmt(c.cpi(), 2),
                   std::to_string(last.threads[t].ways),
                   report::fmt_pct(stall_share, 1)});
  }
  table.print(std::cout);
  std::cout << "\ntotal: " << outcome.total_cycles << " cycles over "
            << outcome.intervals_completed << " intervals\n"
            << "The assembly thread should end up holding most ways; the "
               "streaming thread should be confined to a few.\n";
  return 0;
}
