// Hierarchical partitioning demo (paper §VI-C, Fig 16): two applications
// co-scheduled on one CMP. The OS allocator divides the shared L2 between
// the applications; inside each share, a per-application runtime applies the
// intra-application model-based scheme. This example wires the components
// directly (no run_experiment), showing the lower-level public API.
#include <iostream>
#include <memory>

#include "src/common/rng.hpp"
#include "src/core/hierarchical.hpp"
#include "src/core/partitioner_registry.hpp"
#include "src/report/table.hpp"
#include "src/sim/cmp_system.hpp"
#include "src/sim/driver.hpp"
#include "src/sim/experiment.hpp"
#include "src/trace/benchmarks.hpp"

int main() {
  using namespace capart;

  // A 4-core CMP with the default shared, way-partitionable 1 MB L2.
  sim::SystemConfig sys_cfg;
  sys_cfg.num_threads = 4;
  sys_cfg.l2_mode = mem::L2Mode::kPartitionedShared;
  sim::CmpSystem system(sys_cfg);

  // Application 0: two cg threads on cores 0-1. Application 1: two mgrid
  // threads on cores 2-3. Each application has its own shared region.
  const char* profiles[2] = {"cg", "mgrid"};
  std::vector<std::unique_ptr<trace::OpSource>> generators;
  const Rng root(2026);
  for (int app = 0; app < 2; ++app) {
    const trace::BenchmarkProfile profile =
        trace::make_profile(profiles[app], 2);
    for (ThreadId local = 0; local < 2; ++local) {
      const ThreadId global = static_cast<ThreadId>(app) * 2 + local;
      generators.push_back(std::make_unique<trace::PhasedGenerator>(
          trace::PhaseSchedule(profile.threads[local].phases),
          root.fork(global), sim::private_region_base(global),
          sim::shared_region_base() + (static_cast<Addr>(app) << 40)));
    }
  }

  // One program shape for all threads; barrier domains separate the apps so
  // cg's barriers never stall mgrid and vice versa.
  sim::Program program = sim::make_uniform_program(4, 12, 1'500'000);
  sim::DriverConfig driver_cfg;
  driver_cfg.interval_instructions = 240'000;
  driver_cfg.barrier_group = {0, 0, 1, 1};
  sim::Driver driver(system, std::move(program), std::move(generators),
                     driver_cfg);

  // Hierarchical runtime: OS reallocates between the apps every 4 intervals
  // proportionally to their misses; each app runs the model-based scheme.
  std::vector<core::AppSpec> apps = {core::AppSpec{.threads = {0, 1}},
                                     core::AppSpec{.threads = {2, 3}}};
  std::vector<std::unique_ptr<core::PartitionPolicy>> policies;
  policies.push_back(core::registry().make("model-based"));
  policies.push_back(core::registry().make("model-based"));
  core::HierarchicalRuntime runtime(
      system, std::move(apps), std::move(policies),
      core::OsAllocationMode::kMissProportional, /*os_period_intervals=*/4,
      /*overhead_cycles=*/800);
  driver.set_interval_callback(runtime.callback());

  const sim::RunOutcome outcome = driver.run();

  std::cout << "two applications co-scheduled under hierarchical "
               "partitioning (cg on cores 0-1, mgrid on cores 2-3)\n\n";
  report::Table table(
      {"interval", "cg ways (t1/t2)", "mgrid ways (t1/t2)", "cg max CPI",
       "mgrid max CPI"});
  for (const auto& rec : runtime.history()) {
    const auto& t = rec.threads;
    table.add_row(
        {std::to_string(rec.index + 1),
         std::to_string(t[0].ways) + "/" + std::to_string(t[1].ways),
         std::to_string(t[2].ways) + "/" + std::to_string(t[3].ways),
         report::fmt(std::max(t[0].cpi(), t[1].cpi()), 2),
         report::fmt(std::max(t[2].cpi(), t[3].cpi()), 2)});
  }
  table.print(std::cout);

  std::cout << "\nfinal OS-level shares:";
  const auto shares = runtime.app_shares();
  std::cout << " cg=" << shares[0] << " ways, mgrid=" << shares[1]
            << " ways (of " << system.l2().total_ways() << ")\n";
  std::cout << "total runtime: " << outcome.total_cycles << " cycles\n";
  return 0;
}
