// Shows the runtime adapting to phase behaviour: swim's threads change
// character across execution intervals (paper Figs 6-7), the critical thread
// moves, and the partition follows it.
//
//   ./example_phase_adaptivity
#include <algorithm>
#include <vector>
#include <iostream>
#include <string>

#include "src/report/table.hpp"
#include "src/sim/experiment.hpp"

int main() {
  using namespace capart;

  sim::ExperimentConfig cfg;
  cfg.profile = "swim";
  cfg.policy = "model-based";
  cfg.num_intervals = 50;
  cfg.interval_instructions = 240'000;

  const sim::ExperimentResult r = sim::run_experiment(cfg);

  std::cout << "swim under model-based partitioning: watch the partition "
               "track the critical thread across phases\n\n";
  report::Table table({"interval", "critical", "its CPI", "its ways",
                       "largest partition holder"});
  for (const auto& rec : r.intervals) {
    const ThreadId crit = rec.critical_thread();
    ThreadId biggest = 0;
    for (ThreadId t = 1; t < rec.threads.size(); ++t) {
      if (rec.threads[t].ways > rec.threads[biggest].ways) biggest = t;
    }
    table.add_row({std::to_string(rec.index + 1),
                   "t" + std::to_string(crit + 1),
                   report::fmt(rec.threads[crit].cpi(), 2),
                   std::to_string(rec.threads[crit].ways),
                   "t" + std::to_string(biggest + 1)});
  }
  table.print(std::cout);

  // The scheme's promise is not "the critical thread always holds the
  // biggest partition" — when the critical thread is the cache-INsensitive
  // streamer (swim's thread 2, paper Fig 10), feeding it would be wasted.
  // What should hold is demand tracking on the *sensitive* thread (thread
  // 1): during its heavy phase (high CPI) it should hold more ways than
  // during its light phase.
  double heavy_ways = 0, light_ways = 0;
  int heavy_n = 0, light_n = 0;
  std::vector<double> t0_cpis;
  for (const auto& rec : r.intervals) {
    if (rec.threads[0].instructions > 0) t0_cpis.push_back(rec.threads[0].cpi());
  }
  std::sort(t0_cpis.begin(), t0_cpis.end());
  const double median = t0_cpis[t0_cpis.size() / 2];
  for (std::size_t i = 1; i < r.intervals.size(); ++i) {
    const auto& prev = r.intervals[i - 1].threads[0];
    if (prev.instructions == 0) continue;
    // Allocation reacts at the boundary, so compare this interval's ways
    // against the previous interval's observed phase.
    const auto ways = static_cast<double>(r.intervals[i].threads[0].ways);
    if (prev.cpi() > median) {
      heavy_ways += ways;
      ++heavy_n;
    } else {
      light_ways += ways;
      ++light_n;
    }
  }
  std::cout << "\nthread 1 average ways after a heavy-phase interval: "
            << report::fmt(heavy_ways / heavy_n, 1)
            << "\nthread 1 average ways after a light-phase interval: "
            << report::fmt(light_ways / light_n, 1)
            << "\n(the partition should track the sensitive thread's "
               "phase-varying demand)\n";
  return 0;
}
