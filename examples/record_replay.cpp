// Trace record and replay: capture a live run's per-thread reference streams
// to files, then drive a fresh simulation from the files. This is the path
// for plugging in externally produced traces (e.g. Pin-derived) instead of
// the synthetic generators — the rest of the stack is unchanged.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/partitioner_registry.hpp"
#include "src/core/runtime_system.hpp"
#include "src/sim/cmp_system.hpp"
#include "src/sim/driver.hpp"
#include "src/sim/experiment.hpp"
#include "src/trace/benchmarks.hpp"
#include "src/trace/trace_io.hpp"

int main() {
  using namespace capart;
  constexpr ThreadId kThreads = 4;
  const trace::BenchmarkProfile profile = trace::make_profile("cg", kThreads);
  const Instructions per_thread = 400'000;

  auto make_system = [] {
    return sim::CmpSystem(sim::SystemConfig{});  // paper Fig 2 defaults
  };
  auto run = [&](sim::CmpSystem& system,
                 std::vector<std::unique_ptr<trace::OpSource>> sources) {
    sim::DriverConfig cfg;
    cfg.interval_instructions = 240'000;
    sim::Driver driver(system, sim::make_uniform_program(kThreads, 8,
                                                         per_thread),
                       std::move(sources), cfg);
    core::RuntimeSystem runtime(system, core::registry().make("model-based"),
                                800);
    driver.set_interval_callback(runtime.callback());
    return driver.run();
  };

  // --- 1. Live run, recording each thread's stream --------------------------
  // The recorders live here (outside the driver) so the captured streams
  // survive the run; the driver only receives thin forwarding sources.
  const Rng root(11);
  std::vector<std::unique_ptr<trace::PhasedGenerator>> inner;
  std::vector<std::unique_ptr<trace::TraceRecorder>> recorders;
  std::vector<std::unique_ptr<trace::OpSource>> recording;
  struct Forward final : trace::OpSource {
    explicit Forward(trace::OpSource& s) : source(s) {}
    trace::NextOp next() override { return source.next(); }
    trace::OpSource& source;
  };
  for (ThreadId t = 0; t < kThreads; ++t) {
    inner.push_back(std::make_unique<trace::PhasedGenerator>(
        trace::PhaseSchedule(profile.threads[t].phases), root.fork(t),
        sim::private_region_base(t), sim::shared_region_base()));
    recorders.push_back(std::make_unique<trace::TraceRecorder>(*inner[t]));
    recording.push_back(std::make_unique<Forward>(*recorders[t]));
  }
  sim::CmpSystem live_system = make_system();
  const sim::RunOutcome live = run(live_system, std::move(recording));

  // --- 2. Persist the traces -------------------------------------------------
  std::vector<std::string> paths;
  for (ThreadId t = 0; t < kThreads; ++t) {
    paths.push_back("/tmp/capart_cg_thread" + std::to_string(t) + ".trace");
    trace::write_trace_file(paths.back(), recorders[t]->recorded());
  }

  // --- 3. Replay from the files ----------------------------------------------
  std::vector<std::unique_ptr<trace::OpSource>> replaying;
  for (const std::string& path : paths) {
    replaying.push_back(std::make_unique<trace::TraceReplay>(
        trace::read_trace_file(path)));
  }
  sim::CmpSystem replay_system = make_system();
  const sim::RunOutcome replay = run(replay_system, std::move(replaying));

  std::cout << "live run:   " << live.total_cycles << " cycles\n"
            << "replay run: " << replay.total_cycles << " cycles\n"
            << (live.total_cycles == replay.total_cycles
                    ? "bit-exact reproduction ✔\n"
                    : "MISMATCH ✘\n");
  for (const std::string& path : paths) {
    std::cout << "trace written: " << path << "\n";
    std::remove(path.c_str());
  }
  return live.total_cycles == replay.total_cycles ? 0 : 1;
}
