// Compares every cache organization and partitioning policy on one
// application — the whole design space of the paper in one table.
//
//   ./example_policy_comparison [profile]
#include <iostream>
#include <optional>
#include <string>

#include "src/report/table.hpp"
#include "src/sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const std::string profile = argc > 1 ? argv[1] : "mgrid";

  struct Arm {
    const char* label;
    mem::L2Mode mode;
    std::optional<core::PolicyKind> policy;
  };
  const Arm arms[] = {
      {"private per-thread L2", mem::L2Mode::kPrivatePerThread, std::nullopt},
      {"shared, unpartitioned (LRU)", mem::L2Mode::kSharedUnpartitioned,
       std::nullopt},
      {"static equal partition", mem::L2Mode::kPartitionedShared,
       core::PolicyKind::kStaticEqual},
      {"time-shared (fairness)", mem::L2Mode::kPartitionedShared,
       core::PolicyKind::kTimeShared},
      {"throughput-oriented", mem::L2Mode::kPartitionedShared,
       core::PolicyKind::kThroughputOriented},
      {"CPI-proportional (paper VI-A)", mem::L2Mode::kPartitionedShared,
       core::PolicyKind::kCpiProportional},
      {"model-based (paper VI-B)", mem::L2Mode::kPartitionedShared,
       core::PolicyKind::kModelBased},
      {"umon-measured curves (extension)", mem::L2Mode::kPartitionedShared,
       core::PolicyKind::kUmonCriticalPath},
      {"page-coloring + model (extension)", mem::L2Mode::kSetPartitionedShared,
       core::PolicyKind::kModelBased},
  };

  std::cout << "policy comparison on '" << profile << "'\n\n";
  report::Table table({"configuration", "cycles", "vs shared"});

  // Run the shared baseline first so every row can report relative time.
  Cycles shared_cycles = 0;
  std::vector<std::pair<const Arm*, Cycles>> results;
  for (const Arm& arm : arms) {
    sim::ExperimentConfig cfg;
    cfg.profile = profile;
    cfg.l2_mode = arm.mode;
    cfg.policy = arm.policy;
    cfg.num_intervals = 30;
    cfg.interval_instructions = 240'000;
    const auto r = sim::run_experiment(cfg);
    results.emplace_back(&arm, r.outcome.total_cycles);
    if (arm.mode == mem::L2Mode::kSharedUnpartitioned) {
      shared_cycles = r.outcome.total_cycles;
    }
  }
  for (const auto& [arm, cycles] : results) {
    const double gain = (static_cast<double>(shared_cycles) -
                         static_cast<double>(cycles)) /
                        static_cast<double>(shared_cycles);
    table.add_row({arm->label, std::to_string(cycles),
                   report::fmt_pct(gain, 1)});
  }
  table.print(std::cout);
  std::cout << "\nThe model-based scheme should hold the best (or joint "
               "best) row: it is the only one that spends cache ways on the "
               "critical-path thread specifically.\n";
  return 0;
}
