// Compares every cache organization and partitioning policy on one
// application — the whole design space of the paper in one table. The arms
// are declared as a sim::ExperimentSpec and fan out over a BatchRunner, so
// the sweep uses every core (results are bit-identical for any jobs count).
//
//   ./example_policy_comparison [profile] [--jobs=N]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "src/report/batch_summary.hpp"
#include "src/report/table.hpp"
#include "src/sim/batch.hpp"
#include "src/sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  std::string profile = "mgrid";
  unsigned jobs = 0;  // all cores
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      const long v = std::atol(arg.substr(7).data());
      if (v < 1) {
        std::fprintf(stderr, "invalid --jobs value\n");
        return 2;
      }
      jobs = static_cast<unsigned>(v);
    } else {
      profile = std::string(arg);
    }
  }

  struct Arm {
    const char* label;
    mem::L2Mode mode;
    const char* policy;  // core::registry() name; "none" = pure monitor
  };
  const Arm arms[] = {
      {"private per-thread L2", mem::L2Mode::kPrivatePerThread, "none"},
      {"shared, unpartitioned (LRU)", mem::L2Mode::kSharedUnpartitioned,
       "none"},
      {"static equal partition", mem::L2Mode::kPartitionedShared,
       "static-equal"},
      {"time-shared (fairness)", mem::L2Mode::kPartitionedShared,
       "time-shared"},
      {"throughput-oriented", mem::L2Mode::kPartitionedShared,
       "throughput-oriented"},
      {"CPI-proportional (paper VI-A)", mem::L2Mode::kPartitionedShared,
       "cpi-proportional"},
      {"model-based (paper VI-B)", mem::L2Mode::kPartitionedShared,
       "model-based"},
      {"umon-measured curves (extension)", mem::L2Mode::kPartitionedShared,
       "umon-critical-path"},
      {"UCP lookahead (competitor)", mem::L2Mode::kPartitionedShared,
       "ucp-lookahead"},
      {"LFOC-style classing (competitor)", mem::L2Mode::kPartitionedShared,
       "lfoc-classing"},
      {"reuse-aware (competitor)", mem::L2Mode::kPartitionedShared,
       "reuse-aware"},
      {"page-coloring + model (extension)", mem::L2Mode::kSetPartitionedShared,
       "model-based"},
  };

  sim::ExperimentSpec spec;
  spec.name = "policy_comparison";
  for (const Arm& arm : arms) {
    sim::ExperimentConfig cfg;
    cfg.profile = profile;
    cfg.l2_mode = arm.mode;
    cfg.policy = arm.policy;
    cfg.num_intervals = 30;
    cfg.interval_instructions = 240'000;
    spec.add(arm.label, std::move(cfg));
  }

  std::cout << "policy comparison on '" << profile << "'\n\n";
  const sim::BatchRunner runner(jobs);
  const sim::BatchResult batch = runner.run(spec);

  const Cycles shared_cycles =
      batch.at("shared, unpartitioned (LRU)").outcome.total_cycles;
  report::Table table({"configuration", "cycles", "vs shared"});
  for (const sim::ArmOutcome& arm : batch.arms) {
    const Cycles cycles = arm.result.outcome.total_cycles;
    const double gain = (static_cast<double>(shared_cycles) -
                         static_cast<double>(cycles)) /
                        static_cast<double>(shared_cycles);
    table.add_row({arm.name, std::to_string(cycles),
                   report::fmt_pct(gain, 1)});
  }
  table.print(std::cout);
  std::cout << "\n";
  report::print_batch_summary(std::cout, batch);
  std::cout << "\nThe model-based scheme should hold the best (or joint "
               "best) row: it is the only one that spends cache ways on the "
               "critical-path thread specifically.\n";
  return 0;
}
