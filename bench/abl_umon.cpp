// Ablation: learned vs measured cache models. The paper's runtime *learns*
// CPI-vs-ways curves from the allocations it has visited (software only);
// the monitoring hardware of its refs [28]/[29] *measures* the whole
// miss-vs-ways curve every interval (shadow tags on sampled sets). Both
// drive the same critical-path objective here.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation: learned (model-based) vs measured (UMON) cache curves", opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "umon", "shared"}, "abl_umon"),
      opt);

  report::Table table({"app", "model-based vs shared", "umon vs shared",
                       "umon vs model-based"});
  for (const std::string& app : trace::benchmark_names()) {
    const auto& model = batch.at(bench::arm_key(app, "model"));
    const auto& umon = batch.at(bench::arm_key(app, "umon"));
    const auto& shared = batch.at(bench::arm_key(app, "shared"));
    table.add_row({app, report::fmt_pct(sim::improvement(model, shared), 1),
                   report::fmt_pct(sim::improvement(umon, shared), 1),
                   report::fmt_pct(sim::improvement(umon, model), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(measured curves need no exploration and see phase changes "
               "immediately; the software-only scheme needs none of the "
               "shadow-tag hardware — the gap is the price of staying "
               "software-only)\n";
  return bench::exit_status();
}
