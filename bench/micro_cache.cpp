// Engineering micro-benchmarks (google-benchmark): cost of the hot cache
// paths, since the simulator's throughput bounds every experiment above.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/mem/partitioned_cache.hpp"
#include "src/mem/replacement.hpp"
#include "src/mem/set_assoc_cache.hpp"

namespace {

using namespace capart;

void BM_SetAssocHit(benchmark::State& state) {
  mem::SetAssocCache cache({.sets = 256, .ways = 8, .line_bytes = 64});
  cache.access(0, AccessType::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, AccessType::kRead));
  }
}
BENCHMARK(BM_SetAssocHit);

void BM_SetAssocMissStream(benchmark::State& state) {
  mem::SetAssocCache cache({.sets = 256, .ways = 8, .line_bytes = 64});
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, AccessType::kRead));
    addr += 64;
  }
}
BENCHMARK(BM_SetAssocMissStream);

void BM_PartitionedHit(benchmark::State& state) {
  const auto ways = static_cast<std::uint32_t>(state.range(0));
  mem::PartitionedCache cache({.sets = 256, .ways = ways, .line_bytes = 64},
                              4, mem::PartitionMode::kEvictionControl);
  cache.access(0, 0, AccessType::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, 0, AccessType::kRead));
  }
}
BENCHMARK(BM_PartitionedHit)->Arg(16)->Arg(64);

void BM_PartitionedMissEvictionControl(benchmark::State& state) {
  const auto ways = static_cast<std::uint32_t>(state.range(0));
  mem::PartitionedCache cache({.sets = 256, .ways = ways, .line_bytes = 64},
                              4, mem::PartitionMode::kEvictionControl);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_PartitionedMissEvictionControl)->Arg(16)->Arg(64);

void BM_PartitionedMissGlobalLru(benchmark::State& state) {
  mem::PartitionedCache cache({.sets = 256, .ways = 64, .line_bytes = 64}, 4,
                              mem::PartitionMode::kUnpartitioned);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_PartitionedMissGlobalLru);

// Per-access cost per replacement policy, hit and miss paths, at the
// paper's 64-way shared-L2 associativity. Arg 0 selects the policy
// (0 = lru, 1 = plru, 2 = srrip). The LRU miss path is the number to watch:
// it used to rescan 64 per-line stamps per victim search; the recency
// permutation finds the victim without the stamp scan.
mem::CacheGeometry repl_geometry(std::int64_t arg) {
  return {.sets = 256,
          .ways = 64,
          .line_bytes = 64,
          .repl = mem::kAllReplacementKinds[static_cast<std::size_t>(arg)]};
}

void repl_arg_name(benchmark::internal::Benchmark* b) {
  b->ArgNames({"repl"})->Arg(0)->Arg(1)->Arg(2);
}

void BM_ReplacementHit(benchmark::State& state) {
  mem::PartitionedCache cache(repl_geometry(state.range(0)), 4,
                              mem::PartitionMode::kEvictionControl);
  cache.access(0, 0, AccessType::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, 0, AccessType::kRead));
  }
}
BENCHMARK(BM_ReplacementHit)->Apply(repl_arg_name);

void BM_ReplacementMissEvictionControl(benchmark::State& state) {
  mem::PartitionedCache cache(repl_geometry(state.range(0)), 4,
                              mem::PartitionMode::kEvictionControl);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_ReplacementMissEvictionControl)->Apply(repl_arg_name);

void BM_ReplacementMissGlobal(benchmark::State& state) {
  mem::PartitionedCache cache(repl_geometry(state.range(0)), 4,
                              mem::PartitionMode::kUnpartitioned);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_ReplacementMissGlobal)->Apply(repl_arg_name);

void BM_Retarget(benchmark::State& state) {
  mem::PartitionedCache cache({.sets = 256, .ways = 64, .line_bytes = 64}, 4,
                              mem::PartitionMode::kEvictionControl);
  const std::vector<std::uint32_t> a = {32, 16, 8, 8};
  const std::vector<std::uint32_t> b = {16, 16, 16, 16};
  bool flip = false;
  for (auto _ : state) {
    cache.set_targets(flip ? a : b);
    flip = !flip;
  }
}
BENCHMARK(BM_Retarget);

}  // namespace

BENCHMARK_MAIN();
