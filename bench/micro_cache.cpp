// Engineering micro-benchmarks (google-benchmark): cost of the hot cache
// paths, since the simulator's throughput bounds every experiment above.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/mem/block_index.hpp"
#include "src/mem/cache_core.hpp"
#include "src/mem/partitioned_cache.hpp"
#include "src/mem/replacement.hpp"
#include "src/mem/set_assoc_cache.hpp"

namespace {

using namespace capart;

void BM_SetAssocHit(benchmark::State& state) {
  mem::SetAssocCache cache({.sets = 256, .ways = 8, .line_bytes = 64});
  cache.access(0, AccessType::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, AccessType::kRead));
  }
}
BENCHMARK(BM_SetAssocHit);

void BM_SetAssocMissStream(benchmark::State& state) {
  mem::SetAssocCache cache({.sets = 256, .ways = 8, .line_bytes = 64});
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, AccessType::kRead));
    addr += 64;
  }
}
BENCHMARK(BM_SetAssocMissStream);

void BM_PartitionedHit(benchmark::State& state) {
  const auto ways = static_cast<std::uint32_t>(state.range(0));
  mem::PartitionedCache cache({.sets = 256, .ways = ways, .line_bytes = 64},
                              4, mem::PartitionMode::kEvictionControl);
  cache.access(0, 0, AccessType::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, 0, AccessType::kRead));
  }
}
BENCHMARK(BM_PartitionedHit)->Arg(16)->Arg(64);

void BM_PartitionedMissEvictionControl(benchmark::State& state) {
  const auto ways = static_cast<std::uint32_t>(state.range(0));
  mem::PartitionedCache cache({.sets = 256, .ways = ways, .line_bytes = 64},
                              4, mem::PartitionMode::kEvictionControl);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_PartitionedMissEvictionControl)->Arg(16)->Arg(64);

void BM_PartitionedMissGlobalLru(benchmark::State& state) {
  mem::PartitionedCache cache({.sets = 256, .ways = 64, .line_bytes = 64}, 4,
                              mem::PartitionMode::kUnpartitioned);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_PartitionedMissGlobalLru);

// Per-access cost per replacement policy, hit and miss paths, at the
// paper's 64-way shared-L2 associativity. Arg 0 selects the policy
// (0 = lru, 1 = plru, 2 = srrip). The LRU miss path is the number to watch:
// it used to rescan 64 per-line stamps per victim search; the recency
// permutation finds the victim without the stamp scan.
mem::CacheGeometry repl_geometry(std::int64_t arg) {
  return {.sets = 256,
          .ways = 64,
          .line_bytes = 64,
          .repl = mem::kAllReplacementKinds[static_cast<std::size_t>(arg)]};
}

void repl_arg_name(benchmark::internal::Benchmark* b) {
  b->ArgNames({"repl"})->Arg(0)->Arg(1)->Arg(2);
}

void BM_ReplacementHit(benchmark::State& state) {
  mem::PartitionedCache cache(repl_geometry(state.range(0)), 4,
                              mem::PartitionMode::kEvictionControl);
  cache.access(0, 0, AccessType::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, 0, AccessType::kRead));
  }
}
BENCHMARK(BM_ReplacementHit)->Apply(repl_arg_name);

void BM_ReplacementMissEvictionControl(benchmark::State& state) {
  mem::PartitionedCache cache(repl_geometry(state.range(0)), 4,
                              mem::PartitionMode::kEvictionControl);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_ReplacementMissEvictionControl)->Apply(repl_arg_name);

void BM_ReplacementMissGlobal(benchmark::State& state) {
  mem::PartitionedCache cache(repl_geometry(state.range(0)), 4,
                              mem::PartitionMode::kUnpartitioned);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_ReplacementMissGlobal)->Apply(repl_arg_name);

// Tag-lookup mechanism ablation (--l2-index). Args: {ways, index} with
// index 0 = scan, 1 = hash. The hit path re-walks a resident working set
// (pure lookup cost); the random miss stream adds victim choice and index
// maintenance. The kAuto crossover in CacheGeometry::resolved_index comes
// from these numbers.
mem::CacheGeometry index_geometry(std::int64_t ways, std::int64_t kind) {
  return {.sets = 256,
          .ways = static_cast<std::uint32_t>(ways),
          .line_bytes = 64,
          .index = mem::kAllIndexMechanisms[static_cast<std::size_t>(kind)]};
}

void index_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"ways", "index"});
  for (std::int64_t ways : {16, 32, 64}) {
    b->Args({ways, 0});
    b->Args({ways, 1});
  }
}

void BM_IndexHit(benchmark::State& state) {
  mem::PartitionedCache cache(index_geometry(state.range(0), state.range(1)),
                              4, mem::PartitionMode::kEvictionControl);
  // A resident working set of ~4 lines per set: every loop access hits, with
  // a realistic mix of probe depths.
  Rng rng(7);
  std::vector<Addr> addrs;
  addrs.reserve(1024);
  for (int i = 0; i < 1024; ++i) addrs.push_back(rng.below(1u << 24) * 64);
  for (const Addr a : addrs) cache.access(0, a, AccessType::kRead);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, addrs[i], AccessType::kRead));
    i = (i + 1) & 1023;
  }
}
BENCHMARK(BM_IndexHit)->Apply(index_args);

void BM_IndexMissEvictionControl(benchmark::State& state) {
  mem::PartitionedCache cache(index_geometry(state.range(0), state.range(1)),
                              4, mem::PartitionMode::kEvictionControl);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    benchmark::DoNotOptimize(
        cache.access(tid, rng.below(1u << 24) * 64, AccessType::kRead));
  }
}
BENCHMARK(BM_IndexMissEvictionControl)->Apply(index_args);

// Full hot-path matrix at the paper's 64-way L2: replacement policy x
// enforcement mode x lookup mechanism over a mixed hit/miss random stream
// (~25% hits). Args: {repl, enforce, index}. kSetColoring drives
// access_in_set directly — the coloring wrapper's own block->set mapping is
// not what is being measured.
constexpr mem::PartitionEnforcement kAllEnforcements[] = {
    mem::PartitionEnforcement::kNone,
    mem::PartitionEnforcement::kWayEvictionControl,
    mem::PartitionEnforcement::kWayFlushReconfigure,
    mem::PartitionEnforcement::kSetColoring,
};

void hot_path_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"repl", "enforce", "index"});
  for (std::int64_t repl = 0; repl < 3; ++repl) {
    for (std::int64_t enforce = 0; enforce < 4; ++enforce) {
      b->Args({repl, enforce, 0});
      b->Args({repl, enforce, 1});
    }
  }
}

void BM_HotPath(benchmark::State& state) {
  const mem::CacheGeometry geometry = {
      .sets = 256,
      .ways = 64,
      .line_bytes = 64,
      .repl =
          mem::kAllReplacementKinds[static_cast<std::size_t>(state.range(0))],
      .index =
          mem::kAllIndexMechanisms[static_cast<std::size_t>(state.range(2))]};
  const mem::PartitionEnforcement enforcement =
      kAllEnforcements[static_cast<std::size_t>(state.range(1))];
  mem::CacheCore core(geometry, 4, enforcement);
  Rng rng(1);
  for (auto _ : state) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    const std::uint64_t block = rng.below(1u << 16);
    if (enforcement == mem::PartitionEnforcement::kSetColoring) {
      benchmark::DoNotOptimize(core.access_in_set(
          tid, block, static_cast<std::uint32_t>(block & 255),
          AccessType::kRead));
    } else {
      benchmark::DoNotOptimize(
          core.access(tid, block * 64, AccessType::kRead));
    }
  }
}
BENCHMARK(BM_HotPath)->Apply(hot_path_args);

void BM_Retarget(benchmark::State& state) {
  mem::PartitionedCache cache({.sets = 256, .ways = 64, .line_bytes = 64}, 4,
                              mem::PartitionMode::kEvictionControl);
  const std::vector<std::uint32_t> a = {32, 16, 8, 8};
  const std::vector<std::uint32_t> b = {16, 16, 16, 16};
  bool flip = false;
  for (auto _ : state) {
    cache.set_targets(flip ? a : b);
    flip = !flip;
  }
}
BENCHMARK(BM_Retarget);

}  // namespace

BENCHMARK_MAIN();
