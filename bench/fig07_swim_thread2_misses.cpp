// Fig 7: L2 misses of SWIM's thread 2 across the same 50 execution intervals
// as Fig 6(b) — the miss series tracks the CPI series.
#include <iostream>

#include "bench_common.hpp"
#include "src/math/stats.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  if (opt.intervals == 40) opt.intervals = 50;
  bench::banner("Fig 7: SWIM thread 2 L2 misses across execution intervals",
                opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, {"swim"}, {"shared"}, "fig07"), opt);
  const sim::ExperimentResult& r = batch.at("swim/shared");
  constexpr ThreadId kThread2 = 1;  // paper's 1-based "thread 2"

  report::Table table({"interval", "L2 misses", "CPI"});
  std::vector<double> cpis, misses;
  for (const auto& rec : r.intervals) {
    const auto& t = rec.threads[kThread2];
    table.add_row({std::to_string(rec.index + 1), std::to_string(t.l2_misses),
                   report::fmt(t.cpi(), 2)});
    if (t.instructions > 0) {
      cpis.push_back(t.cpi());
      misses.push_back(static_cast<double>(t.l2_misses) /
                       static_cast<double>(t.instructions));
    }
  }
  table.print(std::cout);
  std::cout << "\ncorrelation with the Fig 6(b) CPI series: "
            << report::fmt(math::pearson(cpis, misses), 3)
            << "  (paper: clear correlation)\n";
  return bench::exit_status();
}
