// Fig 2: the default simulated system configuration.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 2: default system configuration", opt);

  const sim::ExperimentConfig cfg = bench::base_config(opt, "cg");
  report::Table t({"Parameter", "Value"});
  t.add_row({"Core model", "in-order, blocking (UltraSPARC-III-class)"});
  t.add_row({"Number of cores", std::to_string(cfg.num_threads)});
  t.add_row({"Number of threads", std::to_string(cfg.num_threads)});
  t.add_row({"L1 cache (private, per core)",
             std::to_string(cfg.l1.size_bytes() / 1024) + " KB, " +
                 std::to_string(cfg.l1.ways) + "-way, " +
                 std::to_string(cfg.l1.line_bytes) + " B lines"});
  t.add_row({"L2 cache (shared)",
             std::to_string(cfg.l2.size_bytes() / 1024) + " KB, " +
                 std::to_string(cfg.l2.ways) + "-way, " +
                 std::to_string(cfg.l2.sets) + " sets"});
  t.add_row({"L2 hit penalty",
             std::to_string(cfg.timing.l2_hit_penalty) + " cycles"});
  t.add_row({"Memory penalty",
             std::to_string(cfg.timing.memory_penalty) + " cycles"});
  t.add_row({"Streaming (prefetched) miss penalty",
             std::to_string(cfg.timing.streaming_memory_penalty) + " cycles"});
  t.add_row({"Execution interval",
             std::to_string(cfg.interval_instructions) +
                 " instructions (paper: 15 M; scaled)"});
  t.add_row({"Run length", std::to_string(cfg.num_intervals) + " intervals"});
  t.add_row({"Runtime repartition overhead",
             std::to_string(cfg.runtime_overhead_cycles) + " cycles/interval"});
  t.print(std::cout);
  return bench::exit_status();
}
