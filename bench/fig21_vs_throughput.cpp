// Fig 21: performance improvement of dynamic model-based partitioning over a
// throughput-oriented partitioner (greedy marginal-miss-utility, the
// objective of the prior schemes in paper §IV-B). (Paper: up to 20 %,
// positive for every application tested.)
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 21: dynamic partitioning vs throughput-oriented scheme",
                opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "throughput"}, "fig21"),
      opt);

  report::Table table({"app", "improvement"});
  double total = 0.0;
  for (const std::string& app : trace::benchmark_names()) {
    const double imp =
        sim::improvement(batch.at(bench::arm_key(app, "model")),
                         batch.at(bench::arm_key(app, "throughput")));
    total += imp;
    table.add_row({app, report::fmt_pct(imp, 1)});
  }
  table.add_row(
      {"average",
       report::fmt_pct(
           total / static_cast<double>(trace::benchmark_names().size()), 1)});
  table.print(std::cout);
  std::cout << "\n(paper: over 20% at best; the throughput scheme speeds up "
               "whichever thread buys the most misses, not the critical "
               "path)\n";
  return bench::exit_status();
}
