// Ablation: partitioning mechanism — §V's way partitioning by eviction
// control vs set partitioning by OS page coloring (related work: Lin et al.,
// Zhang et al.). Both run the same model-based policy; the differences are
// structural: coloring keeps full associativity per thread but leaks through
// shared pages and pays a recoloring (stranded-lines) cost on every
// repartition, while way partitioning shares capacity gracefully and moves
// gradually for free.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation: way partitioning (paper §V) vs page-coloring set "
      "partitioning",
      opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "coloring", "shared"}, "abl_mechanism"),
      opt);

  report::Table table({"app", "ways vs shared", "colors vs shared",
                       "ways vs colors"});
  for (const std::string& app : trace::benchmark_names()) {
    const auto& ways = batch.at(bench::arm_key(app, "model"));
    const auto& colors = batch.at(bench::arm_key(app, "coloring"));
    const auto& shared = batch.at(bench::arm_key(app, "shared"));
    table.add_row({app, report::fmt_pct(sim::improvement(ways, shared), 1),
                   report::fmt_pct(sim::improvement(colors, shared), 1),
                   report::fmt_pct(sim::improvement(ways, colors), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(the paper chose way partitioning for its gradual, "
               "flush-free transitions; coloring pays for every repartition "
               "in stranded lines and leaks isolation through shared "
               "pages)\n";
  return bench::exit_status();
}
