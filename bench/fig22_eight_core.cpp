// Fig 22: sensitivity to core count — the same nine applications run with 8
// threads on an 8-core CMP sharing the same 1 MB L2; improvement of dynamic
// partitioning over both the private (static equal) and shared baselines.
// (Paper: gains similar to the 4-core case.)
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  if (opt.threads == 4) opt.threads = 8;  // the figure's configuration
  bench::banner("Fig 22: 8-core CMP sensitivity study", opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "static_equal", "shared"}, "fig22"),
      opt);

  report::Table table({"app", "vs private", "vs shared"});
  double total_priv = 0.0, total_shared = 0.0;
  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentResult& dynamic =
        batch.at(bench::arm_key(app, "model"));
    const double ip = sim::improvement(
        dynamic, batch.at(bench::arm_key(app, "static_equal")));
    const double is =
        sim::improvement(dynamic, batch.at(bench::arm_key(app, "shared")));
    total_priv += ip;
    total_shared += is;
    table.add_row({app, report::fmt_pct(ip, 1), report::fmt_pct(is, 1)});
  }
  const auto n = static_cast<double>(trace::benchmark_names().size());
  table.add_row({"average", report::fmt_pct(total_priv / n, 1),
                 report::fmt_pct(total_shared / n, 1)});
  table.print(std::cout);
  std::cout << "\n(paper: performance gains similar to the 4-core case)\n";
  return bench::exit_status();
}
