// Ablation: cubic-spline vs piecewise-linear runtime CPI models. Paper
// §VI-B: "The choice of the curve fitting algorithm used is independent of
// the partitioning scheme, and therefore, any other algorithm could also be
// used." This bench quantifies how much the curve family matters.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: spline vs piecewise-linear CPI models", opt);

  report::Table table(
      {"app", "spline vs shared", "linear vs shared", "spline vs linear"});
  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentConfig base = bench::base_config(opt, app);
    sim::ExperimentConfig spline_cfg = bench::model_arm(base);
    sim::ExperimentConfig linear_cfg = bench::model_arm(base);
    linear_cfg.policy_options.model_kind = core::ModelKind::kPiecewiseLinear;
    const auto spline = sim::run_experiment(spline_cfg);
    const auto linear = sim::run_experiment(linear_cfg);
    const auto shared = sim::run_experiment(bench::shared_arm(base));
    table.add_row({app, report::fmt_pct(sim::improvement(spline, shared), 1),
                   report::fmt_pct(sim::improvement(linear, shared), 1),
                   report::fmt_pct(sim::improvement(spline, linear), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: the fitting algorithm is interchangeable; both "
               "families should land close)\n";
  return 0;
}
