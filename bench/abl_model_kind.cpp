// Ablation: cubic-spline vs piecewise-linear runtime CPI models. Paper
// §VI-B: "The choice of the curve fitting algorithm used is independent of
// the partitioning scheme, and therefore, any other algorithm could also be
// used." This bench quantifies how much the curve family matters.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: spline vs piecewise-linear CPI models", opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "linear_model", "shared"},
                           "abl_model_kind"),
      opt);

  report::Table table(
      {"app", "spline vs shared", "linear vs shared", "spline vs linear"});
  for (const std::string& app : trace::benchmark_names()) {
    const auto& spline = batch.at(bench::arm_key(app, "model"));
    const auto& linear = batch.at(bench::arm_key(app, "linear_model"));
    const auto& shared = batch.at(bench::arm_key(app, "shared"));
    table.add_row({app, report::fmt_pct(sim::improvement(spline, shared), 1),
                   report::fmt_pct(sim::improvement(linear, shared), 1),
                   report::fmt_pct(sim::improvement(spline, linear), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: the fitting algorithm is interchangeable; both "
               "families should land close)\n";
  return bench::exit_status();
}
