// Ablation: simple CPI-proportional partitioning (paper §VI-A) vs the
// model-based scheme (§VI-B). The paper evaluates only the model-based
// variant "since it outperforms the simple CPI based scheme in all of the
// cases we tested" — this bench reproduces that claim.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: CPI-proportional vs model-based partitioning",
                opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "cpi", "shared"}, "abl_cpi_vs_model"),
      opt);

  report::Table table({"app", "model vs cpi-proportional", "model vs shared",
                       "cpi-prop vs shared"});
  for (const std::string& app : trace::benchmark_names()) {
    const auto& model = batch.at(bench::arm_key(app, "model"));
    const auto& cpi = batch.at(bench::arm_key(app, "cpi"));
    const auto& shared = batch.at(bench::arm_key(app, "shared"));
    table.add_row({app, report::fmt_pct(sim::improvement(model, cpi), 1),
                   report::fmt_pct(sim::improvement(model, shared), 1),
                   report::fmt_pct(sim::improvement(cpi, shared), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper §VII: the curve-fitting scheme outperforms the "
               "simple CPI-based scheme in all tested cases — the CPI scheme "
               "is blind to cache sensitivity)\n";
  return bench::exit_status();
}
