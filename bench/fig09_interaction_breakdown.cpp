// Fig 9: breakdown of inter-thread interactions into constructive
// (inter-thread hits: data one thread brought in is reused by another) and
// destructive (inter-thread evictions), per application, shared L2.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 9: constructive vs destructive inter-thread interaction",
                opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(), {"shared"}, "fig09"),
      opt);

  report::Table table(
      {"app", "constructive (hits)", "destructive (evictions)"});
  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentResult& r = batch.at(bench::arm_key(app, "shared"));
    const double constructive = r.l2_stats.constructive_fraction();
    table.add_row({app, report::fmt_pct(constructive, 1),
                   report::fmt_pct(1.0 - constructive, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: not all inter-thread interactions are "
               "constructive; a significant eviction share exists.\n"
               " A partitioned shared cache keeps the constructive hits and "
               "suppresses the destructive evictions.)\n";
  return bench::exit_status();
}
