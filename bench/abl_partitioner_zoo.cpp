// Partitioner zoo: every partitioner in core::registry() against the shared
// LRU baseline over the full workload suite. The table is the registry-wide
// competitor comparison for EXPERIMENTS.md — the paper's model-based scheme
// next to UCP-style lookahead, LFOC-style classing, the reuse/sharing-aware
// partitioner and the simpler heuristics. New registry policies appear in
// the sweep automatically.
//
// A second, smaller study exercises the LFOC cache classes end to end on the
// heterogeneous profiles: the lfoc-classing policy under CLOS way-mask
// enforcement with more threads than classes, clustered by the class-blind
// nearest mapper vs the class-driven lfoc mapper (--clos-mapper=lfoc).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/core/partitioner_registry.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Partitioner zoo: every registered partitioner vs shared LRU",
                opt);

  const std::vector<std::string> profiles =
      opt.profiles.empty() ? trace::benchmark_names() : opt.profiles;

  // One arm per registered partitioner (under the short bench spellings the
  // arm registry derives), plus the shared-LRU reference.
  std::vector<std::string> policy_arms;
  for (const core::Partitioner* p : core::registry().describe()) {
    policy_arms.push_back(bench::bench_arm_name(*p));
  }
  std::vector<std::string> arms = {"shared"};
  arms.insert(arms.end(), policy_arms.begin(), policy_arms.end());

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, profiles, arms, "abl_partitioner_zoo"), opt);

  std::vector<std::string> header = {"app"};
  header.insert(header.end(), policy_arms.begin(), policy_arms.end());
  report::Table table(header);
  std::vector<double> totals(policy_arms.size(), 0.0);
  for (const std::string& app : profiles) {
    const auto& shared = batch.at(bench::arm_key(app, "shared"));
    std::vector<std::string> row = {app};
    for (std::size_t i = 0; i < policy_arms.size(); ++i) {
      const double imp = sim::improvement(
          batch.at(bench::arm_key(app, policy_arms[i])), shared);
      totals[i] += imp;
      row.push_back(report::fmt_pct(imp, 1));
    }
    table.add_row(row);
  }
  std::vector<std::string> avg = {"average"};
  for (const double total : totals) {
    avg.push_back(
        report::fmt_pct(total / static_cast<double>(profiles.size()), 1));
  }
  table.add_row(avg);
  table.print(std::cout);
  std::cout << "\n(improvement vs the shared unpartitioned LRU baseline; "
               "positive = the partitioner helps)\n";

  // Classing study: does the lfoc mapper's class-aware clustering beat the
  // class-blind nearest grouping when threads outnumber CLOS way masks?
  std::vector<std::string> hetero;
  for (const char* app : {"cg", "mg", "mgrid", "equake"}) {
    for (const std::string& p : profiles) {
      if (p == app) hetero.push_back(p);
    }
  }
  if (!hetero.empty()) {
    constexpr std::uint32_t kThreads = 8;
    constexpr std::uint32_t kBudget = 4;
    auto clos_config = [&](const std::string& app,
                           core::ClosMapperKind mapper) {
      sim::ExperimentConfig cfg =
          bench::make_arm("lfoc", bench::base_config(opt, app));
      cfg.num_threads = kThreads;
      if (opt.interval_instructions == 0) {
        cfg.interval_instructions = Instructions{60'000} * kThreads;
      }
      cfg.l2_enforce = mem::L2Enforce::kClosWayMask;
      cfg.clos_budget = kBudget;
      cfg.clos_mapper = mapper;
      return cfg;
    };
    sim::ExperimentSpec spec;
    spec.name = "abl_partitioner_zoo_classing";
    for (const std::string& app : hetero) {
      spec.add(app + "/lfoc_clos_nearest",
               clos_config(app, core::ClosMapperKind::kNearest));
      spec.add(app + "/lfoc_clos_lfoc",
               clos_config(app, core::ClosMapperKind::kLfoc));
    }
    const sim::BatchResult classing = bench::run_spec(spec, opt);

    std::cout << "\nLFOC classing study: lfoc-classing policy, " << kThreads
              << " threads on " << kBudget
              << " CLOS way masks, class-driven vs nearest clustering\n";
    report::Table classing_table({"app", "lfoc mapper vs nearest"});
    double classing_total = 0.0;
    for (const std::string& app : hetero) {
      const double imp =
          sim::improvement(classing.at(app + "/lfoc_clos_lfoc"),
                           classing.at(app + "/lfoc_clos_nearest"));
      classing_total += imp;
      classing_table.add_row({app, report::fmt_pct(imp, 1)});
    }
    classing_table.add_row(
        {"average",
         report::fmt_pct(
             classing_total / static_cast<double>(hetero.size()), 1)});
    classing_table.print(std::cout);
    std::cout << "(positive = segregating light/streaming threads into "
                 "dedicated classes beats share-nearest grouping)\n";
  }
  return bench::exit_status();
}
