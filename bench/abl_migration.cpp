// Ablation: thread-migration resilience. Paper §VII: runs without pinning
// showed similar results; when migrations occurred, predictions were briefly
// suboptimal and the scheme "quickly adapted to the new thread-mapping".
// This bench injects core swaps mid-run and measures the residual gain.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: thread-migration resilience", opt);

  auto key = [](const char* app, int migrations, const char* arm) {
    return std::string(app) + "/mig" + std::to_string(migrations) + "/" + arm;
  };
  sim::ExperimentSpec spec;
  spec.name = "abl_migration";
  for (const char* app : {"cg", "mgrid", "equake"}) {
    for (const int migrations : {0, 1, 3}) {
      sim::ExperimentConfig cfg = bench::model_arm(bench::base_config(opt, app));
      for (int m = 0; m < migrations; ++m) {
        // Spread swaps across the run; rotate the pairs involved.
        cfg.migrations.push_back(
            {.interval = (opt.intervals / 4) * static_cast<std::uint64_t>(m + 1),
             .a = static_cast<ThreadId>(m) % cfg.num_threads,
             .b = (static_cast<ThreadId>(m) + 1) % cfg.num_threads});
      }
      sim::ExperimentConfig shared_cfg = bench::shared_arm(bench::base_config(opt, app));
      shared_cfg.migrations = cfg.migrations;  // baseline migrates too
      spec.add(key(app, migrations, "model"), std::move(cfg));
      spec.add(key(app, migrations, "shared"), std::move(shared_cfg));
    }
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  report::Table table({"app", "migrations", "improvement vs shared"});
  for (const char* app : {"cg", "mgrid", "equake"}) {
    for (const int migrations : {0, 1, 3}) {
      const auto& dynamic = batch.at(key(app, migrations, "model"));
      const auto& shared = batch.at(key(app, migrations, "shared"));
      table.add_row({app, std::to_string(migrations),
                     report::fmt_pct(sim::improvement(dynamic, shared), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(paper: the approach is quite resistant to thread "
               "migrations — gains should degrade only mildly)\n";
  return bench::exit_status();
}
