// Fig 10: CPI of SWIM's thread 1 and thread 2 when the whole application
// runs with a 16-way vs a 32-way shared L2 (sets fixed; capacity scales with
// ways, as everywhere in the paper). Thread 1 improves markedly with the
// extra ways; thread 2 barely moves — heterogeneous cache sensitivity.
#include <iostream>

#include "bench_common.hpp"
#include "src/math/stats.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 10: SWIM thread CPI at 16 vs 32 total L2 ways", opt);

  sim::ExperimentSpec spec;
  spec.name = "fig10";
  for (const std::uint32_t ways : {16u, 32u}) {
    sim::ExperimentConfig cfg =
        bench::shared_arm(bench::base_config(opt, "swim"));
    cfg.l2.ways = ways;
    spec.add("swim/" + std::to_string(ways) + "w", std::move(cfg));
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);
  const sim::ExperimentResult& r16 = batch.at("swim/16w");
  const sim::ExperimentResult& r32 = batch.at("swim/32w");

  report::Table table({"interval", "t1 @16w", "t1 @32w", "t2 @16w",
                       "t2 @32w"});
  const std::size_t rows = std::min(r16.intervals.size(), r32.intervals.size());
  for (std::size_t i = 0; i < rows; ++i) {
    table.add_row({std::to_string(i + 1),
                   report::fmt(r16.intervals[i].threads[0].cpi(), 2),
                   report::fmt(r32.intervals[i].threads[0].cpi(), 2),
                   report::fmt(r16.intervals[i].threads[1].cpi(), 2),
                   report::fmt(r32.intervals[i].threads[1].cpi(), 2)});
  }
  table.print(std::cout);

  auto avg_cpi = [](const sim::ExperimentResult& r, ThreadId t) {
    return r.thread_totals[t].cpi();
  };
  const double t1_gain = (avg_cpi(r16, 0) - avg_cpi(r32, 0)) / avg_cpi(r16, 0);
  const double t2_gain = (avg_cpi(r16, 1) - avg_cpi(r32, 1)) / avg_cpi(r16, 1);
  std::cout << "\nthread 1 CPI reduction 16->32 ways: "
            << report::fmt_pct(t1_gain, 1)
            << "\nthread 2 CPI reduction 16->32 ways: "
            << report::fmt_pct(t2_gain, 1)
            << "\n(paper: thread 1 improves considerably, thread 2 shows "
               "very little improvement)\n";
  return bench::exit_status();
}
