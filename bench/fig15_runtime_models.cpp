// Fig 15: the runtime CPI-vs-ways models the model-based partitioner fits
// for each thread, and the best partition its heuristic found, on a 32-way
// cache. Curves are the spline predictions sampled across way counts;
// observed (ways -> CPI) data points are listed beneath.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 15: runtime per-thread CPI models (32-way cache)", opt);

  sim::ExperimentConfig cfg = bench::model_arm(bench::base_config(opt, "cg"));
  cfg.l2.ways = 32;  // the paper's Fig 15 uses a 32-way cache
  sim::ExperimentSpec spec;
  spec.name = "fig15";
  spec.add("cg/model32w", cfg);  // cfg.l2.ways is reused below
  const sim::BatchResult batch = bench::run_spec(spec, opt);
  const sim::ExperimentResult& r = batch.at("cg/model32w");
  const sim::ModelSnapshot& snap = *r.model_snapshot;

  std::vector<std::string> headers = {"ways"};
  for (ThreadId t = 0; t < opt.threads; ++t) {
    headers.push_back("thread " + std::to_string(t + 1));
  }
  report::Table table(headers);
  for (std::uint32_t w = 1; w <= cfg.l2.ways; ++w) {
    std::vector<std::string> row = {std::to_string(w)};
    for (ThreadId t = 0; t < opt.threads; ++t) {
      row.push_back(report::fmt(snap.predicted[t][w - 1], 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nbest partition found (dotted lines in the paper's figure):";
  for (ThreadId t = 0; t < opt.threads; ++t) {
    std::cout << " t" << (t + 1) << "=" << snap.final_allocation[t];
  }
  std::cout << "\n\nobserved data points (ways -> smoothed CPI):\n";
  for (ThreadId t = 0; t < opt.threads; ++t) {
    std::cout << "  thread " << (t + 1) << ":";
    for (const auto& [ways, cpi] : snap.observed[t]) {
      std::cout << " (" << ways << ", " << report::fmt(cpi, 2) << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\n(paper: the critical thread receives the largest "
               "partition; the partition minimizes the predicted maximum "
               "CPI)\n";
  return bench::exit_status();
}
