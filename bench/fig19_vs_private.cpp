// Fig 19: performance improvement of dynamic model-based partitioning over
// the statically partitioned cache with equal partitions — the paper
// identifies this baseline with a private L2 and with fairness-oriented
// schemes. (Paper: up to 23 %, ~11 % on average.)
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Fig 19: dynamic partitioning vs statically partitioned (private) "
      "cache",
      opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "static_equal"}, "fig19"),
      opt);

  report::Table table({"app", "improvement"});
  double total = 0.0;
  for (const std::string& app : trace::benchmark_names()) {
    const double imp =
        sim::improvement(batch.at(bench::arm_key(app, "model")),
                         batch.at(bench::arm_key(app, "static_equal")));
    total += imp;
    table.add_row({app, report::fmt_pct(imp, 1)});
  }
  table.add_row(
      {"average",
       report::fmt_pct(
           total / static_cast<double>(trace::benchmark_names().size()), 1)});
  table.print(std::cout);
  std::cout << "\n(paper: up to 23% improvement, about 11% on average)\n";
  return bench::exit_status();
}
