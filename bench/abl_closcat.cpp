// Ablation: CAT-style CLOS enforcement at many-core scale. The paper's §V
// eviction control gives every thread its own partition, which commodity
// hardware (Intel RDT) cannot: it offers a small budget of contiguous way
// masks (CLOSes) that threads must be clustered onto. This study scales the
// thread count far past the way count (threads in {8,32,64,128} on a 64-way
// banked L2) and sweeps the CLOS budget and the thread->CLOS mapper, with
// the per-thread eviction-control organization as the reference wherever it
// is still feasible (threads <= ways).
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: CLOS way-mask scaling (threads x budget x mapper)",
                opt);

  constexpr std::uint32_t kThreads[] = {8, 32, 64, 128};
  constexpr std::uint32_t kBudgets[] = {4, 8, 16};
  constexpr const char* kApp = "cg";
  // The mapper sweep runs at the largest scale with the middle budget.
  constexpr std::uint32_t kMapperThreads = 64;
  constexpr std::uint32_t kMapperBudget = 8;

  // Work scales with the thread count (constant per-thread work) unless the
  // interval length was pinned explicitly.
  auto scaled_base = [&](std::uint32_t threads) {
    sim::ExperimentConfig base = bench::base_config(opt, kApp);
    base.num_threads = threads;
    if (opt.interval_instructions == 0) {
      base.interval_instructions = Instructions{60'000} * threads;
    }
    // Many-core cache: 8 address-interleaved banks unless overridden.
    if (opt.l2_banks == 0) base.l2_banks = 8;
    return base;
  };
  auto clos_config = [&](std::uint32_t threads, std::uint32_t budget,
                         core::ClosMapperKind mapper) {
    sim::ExperimentConfig cfg = bench::model_arm(scaled_base(threads));
    cfg.l2_enforce = mem::L2Enforce::kClosWayMask;
    cfg.clos_budget = budget;
    cfg.clos_mapper = mapper;
    return cfg;
  };
  auto grid_key = [](std::uint32_t threads, std::uint32_t budget) {
    return "t" + std::to_string(threads) + "/clos" + std::to_string(budget);
  };
  auto mapper_key = [](core::ClosMapperKind kind) {
    return std::string("mapper/") + std::string(core::to_string(kind));
  };
  auto evict_key = [](std::uint32_t threads) {
    return "t" + std::to_string(threads) + "/evict";
  };

  sim::ExperimentSpec spec;
  spec.name = "abl_closcat";
  for (const std::uint32_t threads : kThreads) {
    for (const std::uint32_t budget : kBudgets) {
      spec.add(grid_key(threads, budget),
               clos_config(threads, budget, opt.clos_mapper));
    }
    // Per-thread eviction control only exists up to one way per thread.
    if (threads <= mem::kDefaultL2.ways) {
      spec.add(evict_key(threads), bench::model_arm(scaled_base(threads)));
    }
  }
  for (const core::ClosMapperKind kind : core::kAllClosMapperKinds) {
    spec.add(mapper_key(kind),
             clos_config(kMapperThreads, kMapperBudget, kind));
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  report::Table grid({"threads", "clos4", "clos8", "clos16",
                      "per-thread evict", "clos8 vs evict"});
  for (const std::uint32_t threads : kThreads) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (const std::uint32_t budget : kBudgets) {
      row.push_back(std::to_string(
          batch.at(grid_key(threads, budget)).outcome.total_cycles));
    }
    if (threads <= mem::kDefaultL2.ways) {
      const auto& evict = batch.at(evict_key(threads));
      row.push_back(std::to_string(evict.outcome.total_cycles));
      row.push_back(report::fmt_pct(
          sim::improvement(batch.at(grid_key(threads, 8)), evict), 1));
    } else {
      row.push_back("n/a");
      row.push_back("n/a");
    }
    grid.add_row(row);
  }
  grid.print(std::cout);
  std::cout << "\n(cycles to completion, " << kApp
            << " profile, model-based policy, 8-bank 64-way L2; per-thread "
               "eviction control is infeasible past 64 threads)\n\n";

  report::Table mappers({"mapper", "cycles", "vs none"});
  const auto& none = batch.at(mapper_key(core::ClosMapperKind::kNone));
  for (const core::ClosMapperKind kind : core::kAllClosMapperKinds) {
    const auto& run = batch.at(mapper_key(kind));
    mappers.add_row({std::string(core::to_string(kind)),
                     std::to_string(run.outcome.total_cycles),
                     report::fmt_pct(sim::improvement(run, none), 1)});
  }
  mappers.print(std::cout);
  std::cout << "\n(thread->CLOS clustering at " << kMapperThreads
            << " threads, budget " << kMapperBudget
            << "; none = static round-robin)\n";
  return bench::exit_status();
}
