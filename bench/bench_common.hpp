// Shared command-line handling and experiment-arm builders for the bench
// binaries. Every figure/table bench accepts:
//   --intervals=N           execution intervals per run (default 40)
//   --interval-instr=N      aggregate instructions per interval
//                           (default 60'000 x threads)
//   --threads=N             cores/threads (default 4; fig22 uses 8)
//   --seed=N                workload seed (default 42)
// Defaults are the scaled-down configuration documented in EXPERIMENTS.md:
// the paper used 15 M-instruction intervals on a full-system simulator; the
// dynamics are interval-count-, not interval-length-, driven (paper §VII and
// the abl_interval_length bench).
#pragma once

#include <string>

#include "src/sim/experiment.hpp"

namespace capart::bench {

struct BenchOptions {
  std::uint32_t intervals = 40;
  Instructions interval_instructions = 0;  // 0 -> 60'000 x threads
  ThreadId threads = 4;
  std::uint64_t seed = 42;
};

/// Parses --key=value flags; unknown flags abort with a usage message.
BenchOptions parse_options(int argc, char** argv);

/// Baseline experiment configuration for one application profile.
sim::ExperimentConfig base_config(const BenchOptions& opt,
                                  const std::string& profile);

/// The four experiment arms the paper compares.
sim::ExperimentConfig shared_arm(sim::ExperimentConfig cfg);
sim::ExperimentConfig private_arm(sim::ExperimentConfig cfg);
sim::ExperimentConfig static_equal_arm(sim::ExperimentConfig cfg);
sim::ExperimentConfig model_arm(sim::ExperimentConfig cfg);
sim::ExperimentConfig cpi_arm(sim::ExperimentConfig cfg);
sim::ExperimentConfig throughput_arm(sim::ExperimentConfig cfg);
sim::ExperimentConfig time_shared_arm(sim::ExperimentConfig cfg);

/// Prints the standard bench banner.
void banner(const std::string& what, const BenchOptions& opt);

}  // namespace capart::bench
