// Shared command-line handling, experiment-arm registry and batch helpers
// for the bench binaries. Every figure/table bench accepts:
//   --intervals=N           execution intervals per run (default 40)
//   --interval-instr=N      aggregate instructions per interval
//                           (default 60'000 x threads)
//   --threads=N             cores/threads (default 4; fig22 uses 8)
//   --profile=NAME[,..]     restrict the bench to these workload profiles
//                           (default: the bench's own list)
//   --seed=N                workload seed (default 42)
//   --l2-index=NAME         shared-L2 tag lookup: scan hash auto (default
//                           auto; bit-identical results, different speed)
//   --l2-banks=N            banked shared L2 (power of two; 0 = monolithic
//                           with infinite bandwidth; contents bit-identical)
//   --l2-enforce=NAME       partition enforcement: default eviction-control
//                           clos (clos = CAT-style way masks; supports
//                           threads > ways)
//   --clos-budget=N         CLOS classes under --l2-enforce=clos (default 8)
//   --clos-mapper=NAME      thread->CLOS clustering: none nearest minmax
//                           lfoc (default nearest)
//   --jobs=N                concurrent experiments (default: all cores)
//   --intra-jobs=N          worker threads inside each experiment (parallel
//                           trace-spool resolves + sharded monitor feeding;
//                           bit-identical for any value; default 1)
//   --trace-dir=DIR         resolved-trace spool directory (empty = off);
//                           arms sharing a profile amortize one
//                           generate+resolve pass; bit-identical
//   --trace-dir-max-bytes=N LRU size cap for the spool directory (0 = none)
//   --lockstep              arms sharing a spool identity replay one shared
//                           decoded trace in lockstep; bit-identical
//   --arm-retries=N         re-run a failed arm up to N times (default 0)
//   --arm-deadline=SEC      per-arm wall-clock budget; expired arms stop at
//                           the next interval boundary as timed_out
//   --events-out=PATH       JSONL run telemetry for every arm (src/obs),
//                           one shared file tagged by "profile/arm"
//   --trace-out=STEM        Chrome-trace timeline per arm
//                           (STEM.<profile>.<arm>.json; open in Perfetto)
//   --csv=STEM              per-interval CSV per arm
//                           (STEM.<profile>.<arm>.csv)
// Defaults are the scaled-down configuration documented in EXPERIMENTS.md:
// the paper used 15 M-instruction intervals on a full-system simulator; the
// dynamics are interval-count-, not interval-length-, driven (paper §VII and
// the abl_interval_length bench).
//
// Benches declare their runs as a sim::ExperimentSpec (usually via
// profile_sweep) and execute them through run_spec, which fans the arms out
// over a BatchRunner and prints the timing footer. Results come back in spec
// order and are addressed by "profile/arm" keys; they are bit-identical for
// any --jobs value.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/clos_mapper.hpp"
#include "src/core/partitioner_registry.hpp"
#include "src/mem/block_index.hpp"
#include "src/mem/l2_organization.hpp"
#include "src/mem/replacement.hpp"
#include "src/sim/batch.hpp"
#include "src/sim/experiment.hpp"

namespace capart::bench {

struct BenchOptions {
  std::uint32_t intervals = 40;
  Instructions interval_instructions = 0;  // 0 -> 60'000 x threads
  ThreadId threads = 4;
  /// Workload subset (--profile=NAME[,..]); empty = the bench's own default
  /// profile list. Lets CI smoke a sweep on one profile.
  std::vector<std::string> profiles;
  std::uint64_t seed = 42;
  unsigned jobs = 0;  // 0 -> sim::default_jobs()
  /// Intra-experiment workers (--intra-jobs=N): parallel spool resolves and
  /// sharded utility-monitor feeding inside each arm. Bit-identical for any
  /// value; composes with --jobs (total threads ~ jobs x intra_jobs).
  std::uint32_t intra_jobs = 1;
  /// Resolved-trace spool directory (--trace-dir=DIR; empty = off). See
  /// sim/trace_spool.hpp — arms sharing a workload profile pay for one
  /// generation+resolve pass; results are bit-identical either way.
  std::string trace_dir;
  /// Spool-directory size cap in bytes (--trace-dir-max-bytes=N; 0 = none):
  /// LRU eviction after every spool acquisition. Needs --trace-dir.
  std::uint64_t trace_dir_max_bytes = 0;
  /// Multi-arm lockstep replay (--lockstep): arms sharing a spool identity
  /// decode the resolved trace once and advance interval-by-interval from
  /// the shared buffer. Needs --trace-dir; bit-identical either way.
  bool lockstep = false;
  /// Fault-isolation policy of the batch (--arm-retries / --arm-deadline):
  /// re-runs per failed arm, and the per-arm wall-clock budget in seconds
  /// (0 = none). See sim::BatchPolicy.
  std::uint32_t arm_retries = 0;
  double arm_deadline = 0.0;
  /// Shared-L2 replacement policy (--l2-repl=lru|plru|srrip). True LRU is
  /// the paper-faithful default; abl_replacement sweeps the others.
  mem::ReplacementKind l2_repl = mem::ReplacementKind::kTrueLru;
  /// Shared-L2 tag-lookup mechanism (--l2-index=scan|hash|auto). Purely an
  /// engineering knob — results are bit-identical across kinds; the
  /// perfsmoke harness sweeps it to quantify the hot-path win.
  mem::IndexKind l2_index = mem::IndexKind::kAuto;
  /// Banked shared L2 (--l2-banks=N, power of two; 0 = monolithic with
  /// infinite bandwidth). Contents stay bit-identical; banks drive the
  /// contention model and per-bank stats.
  std::uint32_t l2_banks = 0;
  /// Partition enforcement (--l2-enforce=default|eviction-control|clos) plus
  /// the CLOS knobs (--clos-budget=N, --clos-mapper=none|nearest|minmax).
  /// clos is the organization that supports threads > ways.
  mem::L2Enforce l2_enforce = mem::L2Enforce::kModeDefault;
  std::uint32_t clos_budget = 8;
  core::ClosMapperKind clos_mapper = core::ClosMapperKind::kNearest;
  /// Observability outputs (empty = off); see the header comment.
  std::string events_out;
  std::string trace_out;
  std::string csv_out;
};

/// Parses --key=value flags; unknown flags abort with a usage message.
BenchOptions parse_options(int argc, char** argv);

/// The interval-instruction count a run actually uses: the explicit flag
/// value, or the 60'000-per-thread fallback.
Instructions resolved_interval_instructions(const BenchOptions& opt) noexcept;

/// The executor width run_spec uses: --jobs, or every hardware thread.
unsigned resolved_jobs(const BenchOptions& opt) noexcept;

/// Baseline experiment configuration for one application profile.
sim::ExperimentConfig base_config(const BenchOptions& opt,
                                  const std::string& profile);

/// An arm maps a base configuration to one point of the design space
/// (cache organization + policy); arms are registered by name so specs can
/// compose them declaratively.
using ArmTransform =
    std::function<sim::ExperimentConfig(sim::ExperimentConfig)>;

struct ArmEntry {
  std::string name;
  ArmTransform transform;
};

/// Bench spelling of a registry partitioner: the historical short arm names
/// scripts and CI file names depend on — the first alias when one exists,
/// with the two legacy underscore spellings pinned.
std::string bench_arm_name(const core::Partitioner& p);

/// Every registered arm: the cache-organization arms plus one generated arm
/// per partitioner in core::registry() (under the short bench spellings —
/// static_equal, model, cpi, ... — so scripts and CI file names stay
/// stable). New registry policies appear here automatically.
const std::vector<ArmEntry>& arm_registry();

/// Looks up a registered arm; aborts listing the known names on a miss.
ArmTransform find_arm(std::string_view arm);

/// Applies registered arm `arm` to `cfg`.
sim::ExperimentConfig make_arm(std::string_view arm,
                               sim::ExperimentConfig cfg);

/// Spec key of profile `profile` under arm `arm`: "profile/arm".
std::string arm_key(std::string_view profile, std::string_view arm);

/// The cross product profiles x arms as a spec with "profile/arm" keys —
/// the shape every figure sweep runs.
sim::ExperimentSpec profile_sweep(const BenchOptions& opt,
                                  const std::vector<std::string>& profiles,
                                  const std::vector<std::string>& arms,
                                  std::string spec_name = "");

/// Runs `spec` on a BatchRunner with resolved_jobs(opt) and prints the
/// timing footer (wall, serial-equivalent, speedup, slowest arms). When the
/// observability flags are set, every arm publishes into a shared JSONL sink
/// (tagged with its arm name) and per-arm Chrome traces / interval CSVs are
/// written after the batch.
sim::BatchResult run_spec(const sim::ExperimentSpec& spec,
                          const BenchOptions& opt);

/// Process exit status for bench mains: 1 once any run_spec batch in this
/// process finished with failed or timed-out arms, 0 otherwise. Failed arms
/// never abort the batch — siblings complete and artifacts are written — but
/// the process must still signal the loss to scripts and CI.
int exit_status() noexcept;

/// The experiment arms the paper and the ablations compare. Registered
/// under the names in parentheses.
sim::ExperimentConfig shared_arm(sim::ExperimentConfig cfg);       // shared
sim::ExperimentConfig private_arm(sim::ExperimentConfig cfg);      // private
sim::ExperimentConfig static_equal_arm(sim::ExperimentConfig cfg);  // static_equal
sim::ExperimentConfig model_arm(sim::ExperimentConfig cfg);        // model
sim::ExperimentConfig cpi_arm(sim::ExperimentConfig cfg);          // cpi
sim::ExperimentConfig throughput_arm(sim::ExperimentConfig cfg);   // throughput
sim::ExperimentConfig time_shared_arm(sim::ExperimentConfig cfg);  // time_shared
sim::ExperimentConfig umon_arm(sim::ExperimentConfig cfg);         // umon
sim::ExperimentConfig fair_arm(sim::ExperimentConfig cfg);         // fair
sim::ExperimentConfig ucp_arm(sim::ExperimentConfig cfg);          // ucp
sim::ExperimentConfig lfoc_arm(sim::ExperimentConfig cfg);         // lfoc
sim::ExperimentConfig reuse_arm(sim::ExperimentConfig cfg);        // reuse
sim::ExperimentConfig coloring_arm(sim::ExperimentConfig cfg);     // coloring
sim::ExperimentConfig flush_arm(sim::ExperimentConfig cfg);        // flush
sim::ExperimentConfig linear_model_arm(sim::ExperimentConfig cfg);  // linear_model

/// Prints the standard bench banner.
void banner(const std::string& what, const BenchOptions& opt);

}  // namespace capart::bench
