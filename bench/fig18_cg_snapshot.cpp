// Fig 18: snapshot of the dynamic partitioning scheme across the first
// execution intervals of NAS CG — way allocation per thread and the
// resulting overall (maximum) CPI. The paper's table shows the critical
// thread's share growing while the overall CPI falls.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 18: dynamic partitioning snapshot on NAS CG", opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, {"cg"}, {"model"}, "fig18"), opt);
  const sim::ExperimentResult& r = batch.at("cg/model");

  std::vector<std::string> headers = {"interval"};
  for (ThreadId t = 0; t < opt.threads; ++t) {
    std::string h = "t";
    h += std::to_string(t + 1);
    h += " ways";
    headers.push_back(std::move(h));
  }
  headers.push_back("overall CPI");
  report::Table table(headers);
  const std::size_t rows = std::min<std::size_t>(8, r.intervals.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& rec = r.intervals[i];
    std::vector<std::string> row = {std::to_string(rec.index + 1)};
    for (const auto& t : rec.threads) row.push_back(std::to_string(t.ways));
    row.push_back(report::fmt(rec.max_cpi(), 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper's Fig 18: interval 1 runs with equal ways; from "
               "interval 2 the slowest thread holds the largest partition "
               "and the overall CPI drops)\n";
  return bench::exit_status();
}
