// Fig 3: per-thread performance (inverse of execution time), normalized to
// the fastest thread, for all nine applications under a shared unpartitioned
// L2. The lowest bar per app is the critical-path thread.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Fig 3: normalized per-thread performance (shared unpartitioned L2)",
      opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(), {"shared"}, "fig03"),
      opt);

  std::vector<std::string> headers = {"app"};
  for (ThreadId t = 0; t < opt.threads; ++t) {
    headers.push_back("thread " + std::to_string(t + 1));
  }
  headers.push_back("critical");
  report::Table table(headers);

  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentResult& r = batch.at(bench::arm_key(app, "shared"));
    // Performance of a thread = 1 / execution (non-stall) cycles; all
    // threads retire equal work, so this is 1/exec_cycles up to a constant.
    std::vector<double> perf;
    double best = 0.0;
    for (const auto& tb : r.thread_totals) {
      perf.push_back(1.0 / static_cast<double>(tb.exec_cycles));
      best = std::max(best, perf.back());
    }
    std::vector<std::string> row = {app};
    std::size_t critical = 0;
    for (std::size_t t = 0; t < perf.size(); ++t) {
      row.push_back(report::fmt(perf[t] / best, 3));
      if (perf[t] < perf[critical]) critical = t;
    }
    row.push_back("thread " + std::to_string(critical + 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: wide variability; the lowest bar per app "
               "determines application performance)\n";
  return bench::exit_status();
}
