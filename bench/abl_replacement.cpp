// Ablation: does intra-application partitioning survive realistic
// replacement? The paper's §V mechanism assumes a true-LRU 64-way L2 —
// realistic in Simics, but no shipping CMP implements true LRU at that
// associativity. This bench reruns the fig19/20/21 comparisons (model-based
// dynamic partitioning vs the private, shared and throughput-oriented
// baselines, plus the static equal split) under each replacement policy the
// unified cache core offers: true LRU, tree-PLRU and SRRIP.
//
// Arms are keyed "profile/arm@repl" so one batch carries the full
// policy x organization x profile cross product; @ stays file-name-safe for
// the per-arm CSV/trace outputs.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/mem/replacement.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation: partitioning gains under LRU / tree-PLRU / SRRIP replacement",
      opt);

  const std::vector<std::string> arms = {"shared", "private", "static_equal",
                                         "model", "throughput"};
  const std::vector<std::string>& profiles = trace::benchmark_names();

  sim::ExperimentSpec spec;
  spec.name = "abl_replacement";
  for (const mem::ReplacementKind repl : mem::kAllReplacementKinds) {
    for (const std::string& profile : profiles) {
      for (const std::string& arm : arms) {
        sim::ExperimentConfig cfg =
            bench::make_arm(arm, bench::base_config(opt, profile));
        cfg.l2.repl = repl;
        spec.add(bench::arm_key(profile, arm) + "@" +
                     std::string(mem::to_string(repl)),
                 std::move(cfg));
      }
    }
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  const auto at = [&](const std::string& profile, const std::string& arm,
                      mem::ReplacementKind repl) -> const auto& {
    return batch.at(bench::arm_key(profile, arm) + "@" +
                    std::string(mem::to_string(repl)));
  };

  for (const mem::ReplacementKind repl : mem::kAllReplacementKinds) {
    report::Table table(
        {"app", "vs shared", "vs static_equal", "vs throughput"});
    double vs_shared = 0.0, vs_static = 0.0, vs_throughput = 0.0;
    for (const std::string& app : profiles) {
      const auto& model = at(app, "model", repl);
      const double s = sim::improvement(model, at(app, "shared", repl));
      const double e = sim::improvement(model, at(app, "static_equal", repl));
      const double t = sim::improvement(model, at(app, "throughput", repl));
      vs_shared += s;
      vs_static += e;
      vs_throughput += t;
      table.add_row({app, report::fmt_pct(s, 1), report::fmt_pct(e, 1),
                     report::fmt_pct(t, 1)});
    }
    const double n = static_cast<double>(profiles.size());
    table.add_row({"average", report::fmt_pct(vs_shared / n, 1),
                   report::fmt_pct(vs_static / n, 1),
                   report::fmt_pct(vs_throughput / n, 1)});
    std::cout << "== model-based dynamic partitioning under "
              << mem::to_string(repl) << " ==\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "(paper figs 19-21 assume true LRU; the plru/srrip sections "
               "test whether the\n partitioning gains persist under the "
               "replacement policies hardware ships)\n";
  return bench::exit_status();
}
