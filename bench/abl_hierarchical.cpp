// Ablation: hierarchical partitioning (paper §VI-C, Fig 16). Two
// applications are co-scheduled on one 4-core CMP (two threads each, own
// barrier domains). The OS level divides the 64 ways between the apps; each
// app's runtime applies the intra-application model-based scheme inside its
// share. Compared against a flat static-equal partition of the same system.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/sim/coschedule.hpp"

namespace {

using namespace capart;

sim::CoScheduleResult run_pair(const bench::BenchOptions& opt,
                               const std::string& policy,
                               core::OsAllocationMode os_mode) {
  sim::CoScheduleConfig cfg;
  cfg.apps = {
      sim::CoScheduledApp{.profile = "cg", .num_threads = 2, .policy = policy},
      sim::CoScheduledApp{.profile = "mgrid", .num_threads = 2,
                          .policy = policy},
  };
  cfg.os_mode = os_mode;
  cfg.num_intervals = opt.intervals;
  cfg.interval_instructions = opt.interval_instructions != 0
                                  ? opt.interval_instructions
                                  : Instructions{60'000} * 4;
  cfg.seed = opt.seed;
  return sim::run_coscheduled(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation: hierarchical OS + runtime partitioning, cg + mgrid "
      "co-scheduled",
      opt);

  // Co-scheduled runs are not ExperimentConfig arms; the generic map of the
  // same executor fans them out with the same determinism guarantee.
  const sim::BatchRunner runner(bench::resolved_jobs(opt));
  std::vector<std::function<sim::CoScheduleResult()>> tasks;
  tasks.emplace_back([&opt] {
    return run_pair(opt, "none", core::OsAllocationMode::kStaticEqual);
  });
  tasks.emplace_back([&opt] {
    return run_pair(opt, "model-based", core::OsAllocationMode::kStaticEqual);
  });
  tasks.emplace_back([&opt] {
    return run_pair(opt, "model-based",
                    core::OsAllocationMode::kMissProportional);
  });
  const auto results = runner.map(std::move(tasks));
  const sim::CoScheduleResult& flat = results[0];
  const sim::CoScheduleResult& intra = results[1];
  const sim::CoScheduleResult& full = results[2];

  report::Table table({"configuration", "cg cycles", "mgrid cycles",
                       "cg vs flat", "mgrid vs flat"});
  auto pct = [](Cycles ours, Cycles base) {
    return report::fmt_pct(
        (static_cast<double>(base) - static_cast<double>(ours)) /
            static_cast<double>(base),
        1);
  };
  auto add = [&](const char* label, const sim::CoScheduleResult& r) {
    table.add_row({label, std::to_string(r.app_cycles[0]),
                   std::to_string(r.app_cycles[1]),
                   pct(r.app_cycles[0], flat.app_cycles[0]),
                   pct(r.app_cycles[1], flat.app_cycles[1])});
  };
  table.add_row({"flat static equal", std::to_string(flat.app_cycles[0]),
                 std::to_string(flat.app_cycles[1]), "-", "-"});
  add("OS equal + intra-app model", intra);
  add("OS miss-prop + intra-app model", full);
  table.print(std::cout);
  std::cout << "\n(paper Fig 16: the OS partitions among applications, the "
               "runtime partitions within each; both levels compose)\n";
  return bench::exit_status();
}
