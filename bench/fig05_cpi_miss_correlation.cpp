// Fig 5: Pearson correlation between per-interval CPI and per-interval L2
// misses, per application (paper: strong linear dependence, average ~0.97).
// The correlation is computed per thread over the interval series and
// averaged across threads.
#include <iostream>

#include "bench_common.hpp"
#include "src/math/stats.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 5: correlation of interval CPI vs interval L2 misses",
                opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(), {"shared"}, "fig05"),
      opt);

  report::Table table({"app", "correlation coefficient"});
  double total = 0.0;
  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentResult& r = batch.at(bench::arm_key(app, "shared"));
    double corr_sum = 0.0;
    int threads_counted = 0;
    for (ThreadId t = 0; t < opt.threads; ++t) {
      std::vector<double> cpis, misses;
      for (const auto& rec : r.intervals) {
        if (rec.threads[t].instructions == 0) continue;  // full-stall interval
        cpis.push_back(rec.threads[t].cpi());
        // Misses per instruction: interval instruction counts vary with
        // barrier stalls here (the paper's intervals are fixed-length per
        // thread), so raw counts would alias progress into the series.
        misses.push_back(static_cast<double>(rec.threads[t].l2_misses) /
                         static_cast<double>(rec.threads[t].instructions));
      }
      if (cpis.size() < 3) continue;
      corr_sum += math::pearson(cpis, misses);
      ++threads_counted;
    }
    const double corr = threads_counted > 0 ? corr_sum / threads_counted : 0.0;
    total += corr;
    table.add_row({app, report::fmt(corr, 3)});
  }
  table.add_row({"average",
                 report::fmt(total / static_cast<double>(
                                         trace::benchmark_names().size()),
                             3)});
  table.print(std::cout);
  std::cout << "\n(paper: average correlation coefficient ~0.97)\n";
  return bench::exit_status();
}
