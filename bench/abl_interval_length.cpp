// Ablation: sensitivity to the execution-interval length. The paper used
// 15 M instructions and reports "little variation across the results when
// the execution interval was either increased or decreased" (§VII).
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: execution-interval length sensitivity", opt);

  const Instructions base_len = opt.interval_instructions != 0
                                    ? opt.interval_instructions
                                    : Instructions{60'000} * opt.threads;
  report::Table table({"app", "interval instr", "improvement vs shared"});
  for (const char* app : {"cg", "swim", "mgrid"}) {
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      sim::ExperimentConfig cfg = bench::base_config(opt, app);
      cfg.interval_instructions =
          static_cast<Instructions>(static_cast<double>(base_len) * scale);
      // Hold total work constant so runs stay comparable.
      cfg.num_intervals = static_cast<std::uint32_t>(
          static_cast<double>(opt.intervals) / scale);
      const auto dynamic = sim::run_experiment(bench::model_arm(cfg));
      const auto shared = sim::run_experiment(bench::shared_arm(cfg));
      table.add_row({app, std::to_string(cfg.interval_instructions),
                     report::fmt_pct(sim::improvement(dynamic, shared), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(paper: little variation when the interval is increased "
               "or decreased)\n";
  return 0;
}
