// Ablation: sensitivity to the execution-interval length. The paper used
// 15 M instructions and reports "little variation across the results when
// the execution interval was either increased or decreased" (§VII).
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: execution-interval length sensitivity", opt);

  const Instructions base_len = bench::resolved_interval_instructions(opt);
  auto scaled = [&](const char* app, double scale) {
    sim::ExperimentConfig cfg = bench::base_config(opt, app);
    cfg.interval_instructions =
        static_cast<Instructions>(static_cast<double>(base_len) * scale);
    // Hold total work constant so runs stay comparable.
    cfg.num_intervals = static_cast<std::uint32_t>(
        static_cast<double>(opt.intervals) / scale);
    return cfg;
  };
  auto key = [&](const char* app, double scale, const char* arm) {
    return std::string(app) + "/" +
           std::to_string(scaled(app, scale).interval_instructions) + "i/" +
           arm;
  };

  sim::ExperimentSpec spec;
  spec.name = "abl_interval_length";
  for (const char* app : {"cg", "swim", "mgrid"}) {
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      const sim::ExperimentConfig cfg = scaled(app, scale);
      spec.add(key(app, scale, "model"), bench::model_arm(cfg));
      spec.add(key(app, scale, "shared"), bench::shared_arm(cfg));
    }
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  report::Table table({"app", "interval instr", "improvement vs shared"});
  for (const char* app : {"cg", "swim", "mgrid"}) {
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      const auto& dynamic = batch.at(key(app, scale, "model"));
      const auto& shared = batch.at(key(app, scale, "shared"));
      table.add_row(
          {app, std::to_string(scaled(app, scale).interval_instructions),
           report::fmt_pct(sim::improvement(dynamic, shared), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(paper: little variation when the interval is increased "
               "or decreased)\n";
  return bench::exit_status();
}
