// Ablation: total L2 size. The paper's §IV-A3 sensitivity study grows the
// cache from 32 KB to 1 MB by adding ways (sets fixed at 256). This sweep
// shows how the dynamic scheme's gain over shared/static-equal baselines
// varies with total capacity: small caches leave nothing to reallocate,
// very large caches fit everyone, and the gains peak in between.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: total L2 ways (capacity) sweep", opt);

  sim::ExperimentSpec spec;
  spec.name = "abl_cache_size";
  auto key = [](const char* app, std::uint32_t ways, const char* arm) {
    return std::string(app) + "/" + std::to_string(ways) + "w/" + arm;
  };
  for (const char* app : {"cg", "mgrid"}) {
    for (const std::uint32_t ways : {8u, 16u, 32u, 64u, 96u}) {
      sim::ExperimentConfig base = bench::base_config(opt, app);
      base.l2.ways = ways;
      spec.add(key(app, ways, "model"), bench::model_arm(base));
      spec.add(key(app, ways, "shared"), bench::shared_arm(base));
      spec.add(key(app, ways, "static_equal"), bench::static_equal_arm(base));
    }
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  report::Table table({"app", "L2 ways", "L2 size", "vs shared",
                       "vs static equal"});
  for (const char* app : {"cg", "mgrid"}) {
    for (const std::uint32_t ways : {8u, 16u, 32u, 64u, 96u}) {
      sim::ExperimentConfig base = bench::base_config(opt, app);
      base.l2.ways = ways;
      const auto& dynamic = batch.at(key(app, ways, "model"));
      const auto& shared = batch.at(key(app, ways, "shared"));
      const auto& equal = batch.at(key(app, ways, "static_equal"));
      table.add_row({app, std::to_string(ways),
                     std::to_string(base.l2.size_bytes() / 1024) + " KB",
                     report::fmt_pct(sim::improvement(dynamic, shared), 1),
                     report::fmt_pct(sim::improvement(dynamic, equal), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(gains should peak where the critical thread's working "
               "set fits a large share but not an equal share)\n";
  return bench::exit_status();
}
