// Fig 8: percentage of all cache interactions that are inter-thread (a
// previous touch of the same line came from a different thread), per app,
// under a shared unpartitioned L2 (paper: ~11.5 % on average).
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 8: inter-thread share of L2 cache interactions", opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(), {"shared"}, "fig08"),
      opt);

  report::Table table({"app", "inter-thread interactions"});
  double total = 0.0;
  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentResult& r = batch.at(bench::arm_key(app, "shared"));
    const double frac = r.l2_stats.inter_thread_fraction();
    total += frac;
    table.add_row({app, report::fmt_pct(frac, 1)});
  }
  table.add_row(
      {"average",
       report::fmt_pct(
           total / static_cast<double>(trace::benchmark_names().size()), 1)});
  table.print(std::cout);
  std::cout << "\n(paper: considerable inter-thread interaction, averaging "
               "about 11.5% of all cache interactions)\n";
  return bench::exit_status();
}
