// Ablation: §V's mechanism choice. The paper rejects reconfigurable caches
// ("considerable loss of data during the reconfiguration... the cache
// remains unavailable") in favour of implicit partitioning via the
// replacement policy. This bench runs the same model-based policy over both
// mechanisms and quantifies that argument.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation: eviction-control vs flush-reconfiguration partitioning",
      opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "flush", "shared"}, "abl_reconfigure"),
      opt);

  report::Table table({"app", "eviction-control vs shared",
                       "flush-reconfigure vs shared",
                       "eviction-control vs flush"});
  for (const std::string& app : trace::benchmark_names()) {
    const auto& gradual = batch.at(bench::arm_key(app, "model"));
    const auto& flush = batch.at(bench::arm_key(app, "flush"));
    const auto& shared = batch.at(bench::arm_key(app, "shared"));
    table.add_row({app,
                   report::fmt_pct(sim::improvement(gradual, shared), 1),
                   report::fmt_pct(sim::improvement(flush, shared), 1),
                   report::fmt_pct(sim::improvement(gradual, flush), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper §V: the replacement-policy approach \"does away "
               "with problems of cache unavailability during "
               "reconfiguration\" — the flush variant pays for every "
               "repartition in lost data and stall)\n";
  return bench::exit_status();
}
