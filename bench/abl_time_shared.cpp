// Ablation: the fairness/QoS comparator — a Chang & Sohi-style time-shared
// partition where a rotating thread holds a large share for a fixed quantum
// (paper §II/§IV-B). Fair time-averaged allocations do not target the
// critical path, so the model-based scheme should win.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: model-based vs time-shared (fairness) partitioning",
                opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(),
                           {"model", "time_shared", "fair", "static_equal"},
                           "abl_time_shared"),
      opt);

  report::Table table({"app", "model vs time-shared",
                       "model vs fair-slowdown",
                       "time-shared vs static equal"});
  for (const std::string& app : trace::benchmark_names()) {
    const auto& model = batch.at(bench::arm_key(app, "model"));
    const auto& shared_time = batch.at(bench::arm_key(app, "time_shared"));
    const auto& fair = batch.at(bench::arm_key(app, "fair"));
    const auto& equal = batch.at(bench::arm_key(app, "static_equal"));
    table.add_row(
        {app, report::fmt_pct(sim::improvement(model, shared_time), 1),
         report::fmt_pct(sim::improvement(model, fair), 1),
         report::fmt_pct(sim::improvement(shared_time, equal), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(time sharing gives every thread the big partition in "
               "turn; only the critical thread's turns help the application, "
               "so the targeted scheme wins)\n";
  return bench::exit_status();
}
