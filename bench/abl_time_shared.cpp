// Ablation: the fairness/QoS comparator — a Chang & Sohi-style time-shared
// partition where a rotating thread holds a large share for a fixed quantum
// (paper §II/§IV-B). Fair time-averaged allocations do not target the
// critical path, so the model-based scheme should win.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: model-based vs time-shared (fairness) partitioning",
                opt);

  report::Table table({"app", "model vs time-shared",
                       "model vs fair-slowdown",
                       "time-shared vs static equal"});
  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentConfig base = bench::base_config(opt, app);
    sim::ExperimentConfig fair_cfg = bench::model_arm(base);
    fair_cfg.policy = core::PolicyKind::kFairSlowdown;
    const auto model = sim::run_experiment(bench::model_arm(base));
    const auto shared_time = sim::run_experiment(bench::time_shared_arm(base));
    const auto fair = sim::run_experiment(fair_cfg);
    const auto equal = sim::run_experiment(bench::static_equal_arm(base));
    table.add_row(
        {app, report::fmt_pct(sim::improvement(model, shared_time), 1),
         report::fmt_pct(sim::improvement(model, fair), 1),
         report::fmt_pct(sim::improvement(shared_time, equal), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(time sharing gives every thread the big partition in "
               "turn; only the critical thread's turns help the application, "
               "so the targeted scheme wins)\n";
  return 0;
}
