#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace capart::bench {
namespace {

std::uint64_t parse_u64(std::string_view value, const char* flag) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.data(), &end, 10);
  if (end != value.data() + value.size()) {
    std::fprintf(stderr, "invalid value for %s: %.*s\n", flag,
                 static_cast<int>(value.size()), value.data());
    std::exit(2);
  }
  return v;
}

}  // namespace

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    const std::string_view key = arg.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : arg.substr(eq + 1);
    if (key == "--intervals") {
      opt.intervals = static_cast<std::uint32_t>(parse_u64(value, "--intervals"));
    } else if (key == "--interval-instr") {
      opt.interval_instructions = parse_u64(value, "--interval-instr");
    } else if (key == "--threads") {
      opt.threads = static_cast<ThreadId>(parse_u64(value, "--threads"));
    } else if (key == "--seed") {
      opt.seed = parse_u64(value, "--seed");
    } else if (key == "--help" || key == "-h") {
      std::printf(
          "flags: --intervals=N --interval-instr=N --threads=N --seed=N\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opt;
}

sim::ExperimentConfig base_config(const BenchOptions& opt,
                                  const std::string& profile) {
  sim::ExperimentConfig cfg;
  cfg.profile = profile;
  cfg.num_threads = opt.threads;
  cfg.num_intervals = opt.intervals;
  cfg.interval_instructions = opt.interval_instructions != 0
                                  ? opt.interval_instructions
                                  : Instructions{60'000} * opt.threads;
  cfg.seed = opt.seed;
  return cfg;
}

sim::ExperimentConfig shared_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kSharedUnpartitioned;
  cfg.policy.reset();
  return cfg;
}

sim::ExperimentConfig private_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kPrivatePerThread;
  cfg.policy.reset();
  return cfg;
}

sim::ExperimentConfig static_equal_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kPartitionedShared;
  cfg.policy = core::PolicyKind::kStaticEqual;
  return cfg;
}

sim::ExperimentConfig model_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kPartitionedShared;
  cfg.policy = core::PolicyKind::kModelBased;
  return cfg;
}

sim::ExperimentConfig cpi_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kPartitionedShared;
  cfg.policy = core::PolicyKind::kCpiProportional;
  return cfg;
}

sim::ExperimentConfig throughput_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kPartitionedShared;
  cfg.policy = core::PolicyKind::kThroughputOriented;
  return cfg;
}

sim::ExperimentConfig time_shared_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kPartitionedShared;
  cfg.policy = core::PolicyKind::kTimeShared;
  return cfg;
}

void banner(const std::string& what, const BenchOptions& opt) {
  std::printf("== %s ==\n", what.c_str());
  std::printf(
      "threads=%u intervals=%u interval-instr=%llu seed=%llu "
      "(scaled config; see EXPERIMENTS.md)\n\n",
      opt.threads, opt.intervals,
      static_cast<unsigned long long>(
          opt.interval_instructions != 0
              ? opt.interval_instructions
              : Instructions{60'000} * opt.threads),
      static_cast<unsigned long long>(opt.seed));
}

}  // namespace capart::bench
