#include "bench_common.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "src/common/error.hpp"
#include "src/common/parse.hpp"
#include "src/core/partitioner_registry.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/jsonl_sink.hpp"
#include "src/report/batch_summary.hpp"
#include "src/report/csv.hpp"

namespace capart::bench {
namespace {

/// Set once a batch finishes with failed arms; read by exit_status().
std::atomic<bool> g_arms_failed{false};

}  // namespace

int exit_status() noexcept { return g_arms_failed.load() ? 1 : 0; }

BenchOptions parse_options(int argc, char** argv) try {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    const std::string_view key = arg.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : arg.substr(eq + 1);
    if (key == "--intervals") {
      opt.intervals = parse_u32_flag(value, "--intervals");
    } else if (key == "--profile") {
      opt.profiles = split_flag_list(value, "--profile");
    } else if (key == "--interval-instr") {
      opt.interval_instructions = parse_u64_flag(value, "--interval-instr");
    } else if (key == "--threads") {
      opt.threads = parse_u32_flag(value, "--threads");
    } else if (key == "--seed") {
      opt.seed = parse_u64_flag(value, "--seed");
    } else if (key == "--l2-repl") {
      if (!mem::parse_replacement(value, opt.l2_repl)) {
        std::fprintf(stderr,
                     "invalid value for --l2-repl: want lru, plru or srrip\n");
        std::exit(2);
      }
    } else if (key == "--l2-index") {
      if (!mem::parse_index_kind(value, opt.l2_index)) {
        std::fprintf(stderr,
                     "invalid value for --l2-index: want scan, hash or auto\n");
        std::exit(2);
      }
    } else if (key == "--l2-banks") {
      opt.l2_banks = parse_u32_flag(value, "--l2-banks");
    } else if (key == "--l2-enforce") {
      if (!mem::parse_l2_enforce(value, opt.l2_enforce)) {
        std::fprintf(stderr,
                     "invalid value for --l2-enforce: want default, "
                     "eviction-control or clos\n");
        std::exit(2);
      }
    } else if (key == "--clos-budget") {
      opt.clos_budget = parse_u32_flag(value, "--clos-budget");
    } else if (key == "--clos-mapper") {
      if (!core::parse_clos_mapper(value, opt.clos_mapper)) {
        std::fprintf(stderr,
                     "invalid value for --clos-mapper: want none, nearest, "
                     "minmax or lfoc\n");
        std::exit(2);
      }
    } else if (key == "--jobs") {
      opt.jobs = parse_u32_flag(value, "--jobs");
      if (opt.jobs == 0) {
        std::fprintf(stderr, "invalid value for --jobs: must be >= 1\n");
        std::exit(2);
      }
    } else if (key == "--intra-jobs") {
      opt.intra_jobs = parse_u32_flag(value, "--intra-jobs");
      if (opt.intra_jobs == 0) {
        std::fprintf(stderr, "invalid value for --intra-jobs: must be >= 1\n");
        std::exit(2);
      }
    } else if (key == "--trace-dir") {
      opt.trace_dir = std::string(value);
    } else if (key == "--trace-dir-max-bytes") {
      opt.trace_dir_max_bytes = parse_u64_flag(value, "--trace-dir-max-bytes");
    } else if (key == "--lockstep") {
      if (!value.empty() && value != "1" && value != "0") {
        std::fprintf(stderr, "invalid value for --lockstep: want 0 or 1\n");
        std::exit(2);
      }
      opt.lockstep = value != "0";
    } else if (key == "--arm-retries") {
      opt.arm_retries = parse_u32_flag(value, "--arm-retries");
    } else if (key == "--arm-deadline") {
      opt.arm_deadline = parse_f64_flag(value, "--arm-deadline");
    } else if (key == "--events-out") {
      opt.events_out = std::string(value);
    } else if (key == "--trace-out") {
      opt.trace_out = std::string(value);
    } else if (key == "--csv") {
      opt.csv_out = std::string(value);
    } else if (key == "--help" || key == "-h") {
      std::printf(
          "flags: --intervals=N --interval-instr=N --threads=N --seed=N "
          "--jobs=N\n"
          "       --intra-jobs=N --trace-dir=DIR --trace-dir-max-bytes=N "
          "--lockstep\n"
          "       --profile=NAME[,..] --arm-retries=N --arm-deadline=SECONDS\n"
          "       --l2-repl=lru|plru|srrip --l2-index=scan|hash|auto\n"
          "       --l2-banks=N --l2-enforce=default|eviction-control|clos\n"
          "       --clos-budget=N --clos-mapper=none|nearest|minmax|lfoc\n"
          "       --events-out=PATH --trace-out=STEM --csv=STEM\n"
          "  --profile=NAME[,..] restrict the bench to these workload "
          "profiles\n"
          "                  (default: the bench's own list)\n"
          "  --l2-repl=NAME  shared-L2 replacement policy (default lru)\n"
          "  --l2-index=NAME shared-L2 tag lookup (default auto; "
          "bit-identical\n"
          "                  results across kinds, different speed)\n"
          "  --l2-banks=N    banked shared L2 (power of two; 0 = monolithic "
          "with\n"
          "                  infinite bandwidth; contents bit-identical)\n"
          "  --l2-enforce=NAME  partition enforcement (clos = CAT-style "
          "way\n"
          "                  masks; supports threads > ways)\n"
          "  --clos-budget=N    CLOS classes under clos (default 8)\n"
          "  --clos-mapper=NAME thread->CLOS clustering (default nearest)\n"
          "  --jobs=N  run up to N experiments concurrently (default: all "
          "cores);\n"
          "            results are bit-identical for any value\n"
          "  --intra-jobs=N  worker threads inside each experiment (spool\n"
          "            resolves + monitor feeding); bit-identical for any "
          "value\n"
          "  --trace-dir=DIR resolved-trace spool directory (default off);\n"
          "            arms sharing a profile amortize one resolve pass\n"
          "  --trace-dir-max-bytes=N LRU size cap for the spool directory\n"
          "            (default 0 = unbounded)\n"
          "  --lockstep      arms sharing a spool identity replay one shared\n"
          "            decoded trace in lockstep (needs --trace-dir);\n"
          "            results are bit-identical either way\n"
          "  --arm-retries=N        re-run a failed arm up to N times "
          "(default 0)\n"
          "  --arm-deadline=SEC     per-arm wall-clock budget; an expired arm "
          "stops\n"
          "                         at its next interval boundary (default: "
          "none)\n"
          "  --events-out=PATH  JSONL run telemetry, all arms in one file\n"
          "  --trace-out=STEM   Chrome trace per arm "
          "(STEM.<profile>.<arm>.json)\n"
          "  --csv=STEM         per-interval CSV per arm "
          "(STEM.<profile>.<arm>.csv)\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opt;
} catch (const Error& error) {
  std::fprintf(stderr, "%s\n", error.what());
  std::exit(2);
}

Instructions resolved_interval_instructions(const BenchOptions& opt) noexcept {
  return opt.interval_instructions != 0 ? opt.interval_instructions
                                        : Instructions{60'000} * opt.threads;
}

unsigned resolved_jobs(const BenchOptions& opt) noexcept {
  return opt.jobs != 0 ? opt.jobs : sim::default_jobs();
}

sim::ExperimentConfig base_config(const BenchOptions& opt,
                                  const std::string& profile) {
  sim::ExperimentConfig cfg;
  cfg.profile = profile;
  cfg.num_threads = opt.threads;
  cfg.num_intervals = opt.intervals;
  cfg.interval_instructions = resolved_interval_instructions(opt);
  cfg.seed = opt.seed;
  cfg.l2.repl = opt.l2_repl;
  cfg.l2.index = opt.l2_index;
  cfg.l2_banks = opt.l2_banks;
  cfg.l2_enforce = opt.l2_enforce;
  cfg.clos_budget = opt.clos_budget;
  cfg.clos_mapper = opt.clos_mapper;
  cfg.intra_jobs = opt.intra_jobs;
  cfg.trace_spool_dir = opt.trace_dir;
  cfg.trace_spool_max_bytes = opt.trace_dir_max_bytes;
  return cfg;
}

std::string bench_arm_name(const core::Partitioner& p) {
  if (p.name == "static-equal") return "static_equal";
  if (p.name == "time-shared") return "time_shared";
  return p.aliases.empty() ? p.name : p.aliases.front();
}

const std::vector<ArmEntry>& arm_registry() {
  static const std::vector<ArmEntry> registry = [] {
    std::vector<ArmEntry> arms;
    arms.push_back({"shared", shared_arm});
    arms.push_back({"private", private_arm});
    // One arm per registered partitioner — the partitioned organization
    // running that policy. New registry entries appear here without any
    // bench change.
    for (const core::Partitioner* p : core::registry().describe()) {
      arms.push_back({bench_arm_name(*p),
                      [name = p->name](sim::ExperimentConfig cfg) {
                        cfg.l2_mode = mem::L2Mode::kPartitionedShared;
                        cfg.policy = name;
                        return cfg;
                      }});
    }
    arms.push_back({"coloring", coloring_arm});
    arms.push_back({"flush", flush_arm});
    arms.push_back({"linear_model", linear_model_arm});
    return arms;
  }();
  return registry;
}

ArmTransform find_arm(std::string_view arm) {
  for (const ArmEntry& entry : arm_registry()) {
    if (entry.name == arm) return entry.transform;
  }
  std::fprintf(stderr, "unknown experiment arm '%.*s'; known arms:",
               static_cast<int>(arm.size()), arm.data());
  for (const ArmEntry& entry : arm_registry()) {
    std::fprintf(stderr, " %.*s", static_cast<int>(entry.name.size()),
                 entry.name.data());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

sim::ExperimentConfig make_arm(std::string_view arm,
                               sim::ExperimentConfig cfg) {
  return find_arm(arm)(std::move(cfg));
}

std::string arm_key(std::string_view profile, std::string_view arm) {
  std::string key(profile);
  key += '/';
  key += arm;
  return key;
}

sim::ExperimentSpec profile_sweep(const BenchOptions& opt,
                                  const std::vector<std::string>& profiles,
                                  const std::vector<std::string>& arms,
                                  std::string spec_name) {
  sim::ExperimentSpec spec;
  spec.name = std::move(spec_name);
  for (const std::string& profile : profiles) {
    const sim::ExperimentConfig base = base_config(opt, profile);
    for (const std::string& arm : arms) {
      spec.add(arm_key(profile, arm), make_arm(arm, base));
    }
  }
  return spec;
}

namespace {

/// "cg/model" -> "cg.model" (arm keys become file-name fragments).
std::string arm_file_fragment(std::string arm) {
  for (char& ch : arm) {
    if (ch == '/') ch = '.';
  }
  return arm;
}

}  // namespace

sim::BatchResult run_spec(const sim::ExperimentSpec& spec,
                          const BenchOptions& opt) {
  const sim::BatchPolicy policy{.max_retries = opt.arm_retries,
                                .arm_deadline_seconds = opt.arm_deadline,
                                .fail_fast = false,
                                .lockstep = opt.lockstep};
  const sim::BatchRunner runner(resolved_jobs(opt), policy);

  // Observability: all arms share one JSONL sink; each event carries its arm
  // name, so the file stays attributable under concurrent execution.
  std::unique_ptr<obs::JsonlSink> sink;
  const sim::ExperimentSpec* to_run = &spec;
  sim::ExperimentSpec observed;
  if (!opt.events_out.empty()) {
    try {
      sink = std::make_unique<obs::JsonlSink>(opt.events_out);
    } catch (const Error& error) {
      std::fprintf(stderr, "%s\n", error.what());
      std::exit(1);
    }
    observed = spec;
    for (sim::ExperimentArm& arm : observed.arms) {
      arm.config.obs.sink = sink.get();
      arm.config.obs.run_name = arm.name;
    }
    to_run = &observed;
  }

  sim::BatchResult batch = runner.run(*to_run);
  if (sink != nullptr) sink->flush();

  // Failed arms carry no result; only surviving arms produce artifacts.
  if (!opt.trace_out.empty()) {
    for (const sim::ArmOutcome& arm : batch.arms) {
      if (!arm.ok()) continue;
      const std::string path =
          opt.trace_out + "." + arm_file_fragment(arm.name) + ".json";
      std::ofstream os(path);
      if (!os.is_open()) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
      }
      obs::write_chrome_trace(os, arm.result.intervals, arm.name);
    }
  }
  if (!opt.csv_out.empty()) {
    for (const sim::ArmOutcome& arm : batch.arms) {
      if (!arm.ok()) continue;
      const std::string path =
          opt.csv_out + "." + arm_file_fragment(arm.name) + ".csv";
      std::ofstream os(path);
      if (!os.is_open()) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
      }
      report::write_interval_csv(os, arm.result.intervals);
    }
  }

  report::print_batch_summary(std::cout, batch);
  std::cout << "\n";
  if (!batch.all_ok()) {
    report::print_failed_arms(std::cerr, batch);
    g_arms_failed.store(true);
  }
  return batch;
}

sim::ExperimentConfig shared_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kSharedUnpartitioned;
  cfg.policy = std::string(core::kNoPolicyName);
  return cfg;
}

sim::ExperimentConfig private_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kPrivatePerThread;
  cfg.policy = std::string(core::kNoPolicyName);
  return cfg;
}

sim::ExperimentConfig static_equal_arm(sim::ExperimentConfig cfg) {
  return make_arm("static_equal", std::move(cfg));
}

sim::ExperimentConfig model_arm(sim::ExperimentConfig cfg) {
  return make_arm("model", std::move(cfg));
}

sim::ExperimentConfig cpi_arm(sim::ExperimentConfig cfg) {
  return make_arm("cpi", std::move(cfg));
}

sim::ExperimentConfig throughput_arm(sim::ExperimentConfig cfg) {
  return make_arm("throughput", std::move(cfg));
}

sim::ExperimentConfig time_shared_arm(sim::ExperimentConfig cfg) {
  return make_arm("time_shared", std::move(cfg));
}

sim::ExperimentConfig umon_arm(sim::ExperimentConfig cfg) {
  return make_arm("umon", std::move(cfg));
}

sim::ExperimentConfig fair_arm(sim::ExperimentConfig cfg) {
  return make_arm("fair", std::move(cfg));
}

sim::ExperimentConfig ucp_arm(sim::ExperimentConfig cfg) {
  return make_arm("ucp", std::move(cfg));
}

sim::ExperimentConfig lfoc_arm(sim::ExperimentConfig cfg) {
  return make_arm("lfoc", std::move(cfg));
}

sim::ExperimentConfig reuse_arm(sim::ExperimentConfig cfg) {
  return make_arm("reuse", std::move(cfg));
}

sim::ExperimentConfig coloring_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kSetPartitionedShared;
  cfg.policy = "model-based";
  return cfg;
}

sim::ExperimentConfig flush_arm(sim::ExperimentConfig cfg) {
  cfg.l2_mode = mem::L2Mode::kFlushReconfigureShared;
  cfg.policy = "model-based";
  return cfg;
}

sim::ExperimentConfig linear_model_arm(sim::ExperimentConfig cfg) {
  cfg = make_arm("model", std::move(cfg));
  cfg.policy_options.model_kind = core::ModelKind::kPiecewiseLinear;
  return cfg;
}

void banner(const std::string& what, const BenchOptions& opt) {
  std::printf("== %s ==\n", what.c_str());
  std::printf(
      "threads=%u intervals=%u interval-instr=%llu seed=%llu jobs=%u "
      "(scaled config; see EXPERIMENTS.md)\n\n",
      opt.threads, opt.intervals,
      static_cast<unsigned long long>(resolved_interval_instructions(opt)),
      static_cast<unsigned long long>(opt.seed), resolved_jobs(opt));
}

}  // namespace capart::bench
