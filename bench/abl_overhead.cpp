// Ablation: runtime overhead charge. The paper reports the dynamic scheme's
// overhead at under 1.5 % of execution time, included in all results. This
// sweep shows how the net gain decays as the per-interval repartition cost
// grows.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: runtime repartition overhead sweep", opt);

  const auto overheads = {Cycles{0}, Cycles{800}, Cycles{2'000}, Cycles{5'000},
                          Cycles{20'000}};
  auto key = [](const char* app, Cycles overhead, const char* arm) {
    return std::string(app) + "/oh" + std::to_string(overhead) + "/" + arm;
  };
  sim::ExperimentSpec spec;
  spec.name = "abl_overhead";
  for (const Cycles overhead : overheads) {
    for (const char* app : {"cg", "mgrid"}) {
      sim::ExperimentConfig cfg = bench::base_config(opt, app);
      cfg.runtime_overhead_cycles = overhead;
      spec.add(key(app, overhead, "model"), bench::model_arm(cfg));
      spec.add(key(app, overhead, "shared"), bench::shared_arm(cfg));
    }
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  report::Table table({"overhead cycles/interval", "overhead share",
                       "cg improvement vs shared",
                       "mgrid improvement vs shared"});
  for (const Cycles overhead : overheads) {
    std::vector<std::string> row = {std::to_string(overhead)};
    bool first = true;
    for (const char* app : {"cg", "mgrid"}) {
      const auto& dynamic = batch.at(key(app, overhead, "model"));
      const auto& shared = batch.at(key(app, overhead, "shared"));
      if (first) {
        const double share =
            static_cast<double>(overhead) * opt.intervals /
            static_cast<double>(dynamic.outcome.total_cycles);
        row.push_back(report::fmt_pct(share, 2));
        first = false;
      }
      row.push_back(report::fmt_pct(sim::improvement(dynamic, shared), 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: overhead below 1.5% of execution time, already "
               "included in the reported gains)\n";
  return bench::exit_status();
}
