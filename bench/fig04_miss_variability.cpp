// Fig 4: per-thread L2 misses, normalized to the thread with the most
// misses, for all nine applications under a shared unpartitioned L2.
// Mirrors Fig 3: slow threads are the high-miss threads.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 4: normalized per-thread L2 misses (shared L2)", opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(), {"shared"}, "fig04"),
      opt);

  std::vector<std::string> headers = {"app"};
  for (ThreadId t = 0; t < opt.threads; ++t) {
    headers.push_back("thread " + std::to_string(t + 1));
  }
  headers.push_back("max-miss thread");
  report::Table table(headers);

  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentResult& r = batch.at(bench::arm_key(app, "shared"));
    std::uint64_t most = 1;
    std::size_t most_idx = 0;
    for (std::size_t t = 0; t < r.thread_totals.size(); ++t) {
      if (r.thread_totals[t].l2_misses > most) {
        most = r.thread_totals[t].l2_misses;
        most_idx = t;
      }
    }
    std::vector<std::string> row = {app};
    for (const auto& tb : r.thread_totals) {
      row.push_back(report::fmt(
          static_cast<double>(tb.l2_misses) / static_cast<double>(most), 3));
    }
    row.push_back("thread " + std::to_string(most_idx + 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: miss variability mirrors the performance "
               "variability of Fig 3)\n";
  return bench::exit_status();
}
