// Fig 6: per-thread CPI of SWIM across 50 contiguous execution intervals
// under a shared L2 — the phase behaviour that makes the critical-path
// thread change over time.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  if (opt.intervals == 40) opt.intervals = 50;  // paper plots 50 intervals
  bench::banner("Fig 6: SWIM per-thread CPI across execution intervals", opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, {"swim"}, {"shared"}, "fig06"), opt);
  const sim::ExperimentResult& r = batch.at("swim/shared");

  std::vector<std::string> headers = {"interval"};
  for (ThreadId t = 0; t < opt.threads; ++t) {
    headers.push_back("thread " + std::to_string(t + 1) + " CPI");
  }
  headers.push_back("critical");
  report::Table table(headers);
  for (const auto& rec : r.intervals) {
    std::vector<std::string> row = {std::to_string(rec.index + 1)};
    for (const auto& t : rec.threads) row.push_back(report::fmt(t.cpi(), 2));
    row.push_back("thread " + std::to_string(rec.critical_thread() + 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: CPI varies across intervals as the program moves "
               "through phases; the critical thread can change)\n";
  return bench::exit_status();
}
