// Ablation: shared-cache bandwidth. The paper's full-system simulation
// carries port contention implicitly; here it is explicit and tunable. As
// banks get scarcer, queueing at the shared cache grows and the partitioning
// gains shift: confining the polluter also relieves bank pressure for
// everyone, so the scheme's edge should hold or grow under contention.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Ablation: shared-cache bank contention sweep", opt);

  sim::ExperimentSpec spec;
  spec.name = "abl_bandwidth";
  auto key = [](const char* app, std::uint32_t banks, const char* arm) {
    return std::string(app) + "/banks" + std::to_string(banks) + "/" + arm;
  };
  for (const char* app : {"cg", "mgrid"}) {
    for (const std::uint32_t banks : {0u, 8u, 4u, 2u}) {
      sim::ExperimentConfig base = bench::base_config(opt, app);
      base.l2_banks = banks;
      spec.add(key(app, banks, "model"), bench::model_arm(base));
      spec.add(key(app, banks, "shared"), bench::shared_arm(base));
    }
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  report::Table table({"app", "banks", "model vs shared",
                       "model cycles", "shared cycles"});
  for (const char* app : {"cg", "mgrid"}) {
    for (const std::uint32_t banks : {0u, 8u, 4u, 2u}) {
      const auto& model = batch.at(key(app, banks, "model"));
      const auto& shared = batch.at(key(app, banks, "shared"));
      table.add_row({app, banks == 0 ? "inf" : std::to_string(banks),
                     report::fmt_pct(sim::improvement(model, shared), 1),
                     std::to_string(model.outcome.total_cycles),
                     std::to_string(shared.outcome.total_cycles)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(banks=inf reproduces the paper's infinite-bandwidth "
               "setup; fewer banks add queueing on top of capacity "
               "contention)\n";
  return bench::exit_status();
}
