// Ablation: targeting a shared L3 instead of a shared L2. Paper footnote 1:
// "A number of commercial CMPs such as Intel Dunnington have a shared L3
// cache as well. Our work can target any shared cache component in the
// chip." This configuration inserts 64 KB private per-core L2s between the
// L1s and the shared 1 MB cache (now an L3 with a higher hit latency) and
// re-runs the headline comparison there.
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

namespace {

capart::sim::ExperimentConfig three_level(capart::sim::ExperimentConfig cfg) {
  cfg.enable_private_l2 = true;
  cfg.timing.l2_hit_penalty = 25;  // L3 is farther than the paper's L2
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner(
      "Ablation: partitioning a shared L3 behind private per-core L2s", opt);

  sim::ExperimentSpec spec;
  spec.name = "abl_l3_target";
  for (const std::string& app : trace::benchmark_names()) {
    const sim::ExperimentConfig base =
        three_level(bench::base_config(opt, app));
    spec.add(bench::arm_key(app, "model"), bench::model_arm(base));
    spec.add(bench::arm_key(app, "shared"), bench::shared_arm(base));
    spec.add(bench::arm_key(app, "static_equal"),
             bench::static_equal_arm(base));
  }
  const sim::BatchResult batch = bench::run_spec(spec, opt);

  report::Table table({"app", "vs shared L3", "vs static-equal L3"});
  double total_shared = 0.0, total_equal = 0.0;
  for (const std::string& app : trace::benchmark_names()) {
    const auto& dynamic = batch.at(bench::arm_key(app, "model"));
    const auto& shared = batch.at(bench::arm_key(app, "shared"));
    const auto& equal = batch.at(bench::arm_key(app, "static_equal"));
    const double is = sim::improvement(dynamic, shared);
    const double ie = sim::improvement(dynamic, equal);
    total_shared += is;
    total_equal += ie;
    table.add_row({app, report::fmt_pct(is, 1), report::fmt_pct(ie, 1)});
  }
  const auto n = static_cast<double>(trace::benchmark_names().size());
  table.add_row({"average", report::fmt_pct(total_shared / n, 1),
                 report::fmt_pct(total_equal / n, 1)});
  table.print(std::cout);
  std::cout << "\n(the private L2s filter locality, so absolute gains "
               "shrink, but the critical-path scheme still wins at the "
               "shared L3)\n";
  return bench::exit_status();
}
