// Fig 20: performance improvement of dynamic model-based partitioning over
// the shared unpartitioned cache. (Paper: up to 15 %, ~9 % on average; three
// small-working-set applications show only a small benefit.)
#include <iostream>

#include "bench_common.hpp"
#include "src/report/table.hpp"
#include "src/trace/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace capart;
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("Fig 20: dynamic partitioning vs shared unpartitioned cache",
                opt);

  const sim::BatchResult batch = bench::run_spec(
      bench::profile_sweep(opt, trace::benchmark_names(), {"model", "shared"},
                           "fig20"),
      opt);

  report::Table table({"app", "improvement"});
  double total = 0.0;
  for (const std::string& app : trace::benchmark_names()) {
    const double imp = sim::improvement(batch.at(bench::arm_key(app, "model")),
                                        batch.at(bench::arm_key(app, "shared")));
    total += imp;
    table.add_row({app, report::fmt_pct(imp, 1)});
  }
  table.add_row(
      {"average",
       report::fmt_pct(
           total / static_cast<double>(trace::benchmark_names().size()), 1)});
  table.print(std::cout);
  std::cout << "\n(paper: up to 15% improvement, about 9% on average; ft, "
               "lu, bt gain little due to small working sets)\n";
  return bench::exit_status();
}
