// Engineering micro-benchmarks (google-benchmark): runtime model fitting and
// evaluation — executed at every interval boundary by the partition engine,
// so its cost is part of the scheme's overhead budget.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.hpp"
#include "src/math/spline.hpp"

namespace {

using namespace capart;

std::pair<std::vector<double>, std::vector<double>> knots(std::size_t n) {
  Rng rng(42);
  std::vector<double> x, y;
  double cursor = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    x.push_back(cursor);
    y.push_back(2.0 + rng.unit() * 10.0);
    cursor += 1.0 + rng.unit() * 3.0;
  }
  return {x, y};
}

void BM_SplineFit(benchmark::State& state) {
  const auto [x, y] = knots(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::CubicSpline::fit(x, y));
  }
}
BENCHMARK(BM_SplineFit)->Arg(4)->Arg(16)->Arg(64);

void BM_SplineEval(benchmark::State& state) {
  const auto [x, y] = knots(16);
  const math::CubicSpline s = math::CubicSpline::fit(x, y);
  double v = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s(v));
    v += 0.37;
    if (v > 40.0) v = 1.0;
  }
}
BENCHMARK(BM_SplineEval);

void BM_PiecewiseLinearFit(benchmark::State& state) {
  const auto [x, y] = knots(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::PiecewiseLinear::fit(x, y));
  }
}
BENCHMARK(BM_PiecewiseLinearFit)->Arg(4)->Arg(16)->Arg(64);

void BM_PiecewiseLinearEval(benchmark::State& state) {
  const auto [x, y] = knots(16);
  const math::PiecewiseLinear p = math::PiecewiseLinear::fit(x, y);
  double v = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p(v));
    v += 0.37;
    if (v > 40.0) v = 1.0;
  }
}
BENCHMARK(BM_PiecewiseLinearEval);

}  // namespace

BENCHMARK_MAIN();
